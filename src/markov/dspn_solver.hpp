#pragma once

#include "src/linalg/dense_matrix.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/markov/ctmc.hpp"
#include "src/petri/reachability.hpp"

namespace nvp::markov {

/// Rate-independent skeleton of the solver's matrix assembly for one
/// reachability-graph structure: the deterministic-group partition (which
/// states enable which deterministic transition) and the CSR slot patterns
/// of the sparse generators. Building it costs one pass over the edges plus
/// the pattern sorts; solving with a cached plan skips exactly that work.
/// A plan is valid for any graph repoured() from the structure it was built
/// on — the edge topology, and hence every pattern and group, is identical.
struct AssemblyPlan {
  std::size_t states = 0;
  bool has_deterministic = false;
  /// Pure-CTMC structures only: slot pattern of sparse_generator().
  linalg::CsrPattern generator;

  /// One deterministic transition and the states that enable it; all
  /// members share the subordinated generator, delay, and transient.
  struct Group {
    std::size_t transition = 0;
    std::vector<std::size_t> members;
    std::vector<char> in_set;  ///< membership mask over all states
    linalg::CsrPattern subordinated;
  };
  /// Ordered by deterministic transition index (the iteration order the
  /// fused solver used).
  std::vector<Group> groups;
};

/// Builds the assembly plan of a graph's structure.
AssemblyPlan build_assembly_plan(const petri::TangibleReachabilityGraph& g);

/// Result of a stationary DSPN analysis.
struct DspnSteadyStateResult {
  /// Stationary probability of each tangible marking.
  linalg::Vector probabilities;
  /// True if the model degenerated to a plain CTMC (no deterministic
  /// transition enabled anywhere).
  bool pure_ctmc = false;
  /// Number of tangible states.
  std::size_t states = 0;
  /// The backend that actually solved (kDense or kSparse, never kAuto).
  SolverBackend backend_used = SolverBackend::kDense;
  /// Stored nonzeros of the solver's main matrices — embedded chain +
  /// conversion factors for the MRGP path, the generator for the pure-CTMC
  /// path. The dense backend reports its full n^2 allocations, so
  /// sparse-vs-dense memory is directly comparable.
  std::size_t matrix_nonzeros = 0;
};

/// Stationary solver for DSPNs under the classical restriction that at most
/// one deterministic transition is enabled in any tangible marking
/// (Ajmone Marsan & Chiola; Lindemann; German). Implements the method of the
/// embedded Markov chain over regeneration points:
///
///  * In a tangible marking without an enabled deterministic transition the
///    regeneration period is the (exponential) sojourn; the embedded-chain
///    row is the usual competing-exponentials distribution.
///  * In a marking that enables deterministic transition d (constant delay
///    tau, enabling-memory policy), the subordinated CTMC runs over the
///    exponential transitions for up to tau time units. States in which d is
///    no longer enabled are absorbing: entering one resets d's timer and is
///    itself a regeneration point. If the process survives in the enabling
///    set until tau, d fires and the marking switches according to the
///    (vanishing-eliminated) firing distribution.
///
/// The transient quantities exp(Q_d tau) and \int_0^tau exp(Q_d t) dt are
/// computed by uniformization with doubling (see transient.hpp) once per
/// deterministic transition and shared by all starting states, and the
/// stationary distribution follows from the embedded chain's stationary
/// vector weighted by expected sojourn (conversion) factors.
///
/// Nets with no deterministic transition are solved directly as CTMCs, so
/// this is the single entry point used by the reliability analyzer for both
/// paper models.
///
/// Two backends implement the same mathematics (Options::backend): the
/// original dense path (LU + matrix-exponential doubling, the oracle) and a
/// sparse path for large state spaces (CSR assembly from the reachability
/// graph, per-row vector uniformization fanned out on the runtime pool, and
/// Krylov stationary solves). kAuto switches on the state count.
class DspnSteadyStateSolver {
 public:
  struct Options {
    SteadyStateMethod ctmc_method = SteadyStateMethod::kDirect;
    /// Probabilities below this are clamped to zero before normalizing.
    double clamp_epsilon = 1e-15;
    /// Matrix representation: kDense materializes n x n matrices and runs
    /// LU / matrix-exponential doubling; kSparse assembles CSR straight
    /// from the reachability graph, runs vector uniformization for the
    /// subordinated transients, and solves the stationary systems with
    /// GMRES + ILU0 (power-iteration fallback). kAuto dispatches on the
    /// tangible state count. The two backends agree to ~1e-12, so the
    /// dense path stays the oracle. kSparse ignores `ctmc_method`.
    SolverBackend backend = SolverBackend::kAuto;
    /// kAuto picks kSparse at or above this many tangible states for
    /// pure-CTMC models (no deterministic transition anywhere). Below it,
    /// dense LU is faster (no Krylov setup) and byte-identical to the
    /// original solver, which keeps the paper configurations on the oracle
    /// path. CTMC generators are O(n) sparse, so the switch pays off early.
    std::size_t sparse_threshold = 128;
    /// kAuto threshold for MRGP models (deterministic transition present).
    /// Their embedded chains are near-dense (the rejuvenation clock is
    /// enabled in most markings), so the sparse path only beats vectorized
    /// dense matrix-exponential doubling once the O(n^3 log tau) cost
    /// dominates — measured crossover is ~500-600 states in Release builds.
    std::size_t mrgp_sparse_threshold = 512;
    /// Retry/fallback chain of the sparse stationary solves (see
    /// fallback.hpp). Also governs whole-solve degradation: when the sparse
    /// backend fails outright and the chain includes the dense stage, the
    /// solve is retried on the dense backend before giving up.
    FallbackOptions fallback;
  };

  DspnSteadyStateSolver() = default;
  explicit DspnSteadyStateSolver(Options options) : options_(options) {}

  /// Computes the stationary distribution over tangible markings.
  /// Throws SolverError if a tangible marking enables two or more
  /// deterministic transitions, or if a state is absorbing.
  DspnSteadyStateResult solve(const petri::TangibleReachabilityGraph& g) const;

  /// Same computation with a prebuilt (typically cached) assembly plan for
  /// the graph's structure, skipping the group partition and the CSR
  /// pattern sorts. Bit-identical to solve(g); the plan must come from
  /// build_assembly_plan() on this graph or on any graph sharing its
  /// structure (repoured() copies).
  DspnSteadyStateResult solve(const petri::TangibleReachabilityGraph& g,
                              const AssemblyPlan& plan) const;

 private:
  Options options_{};
};

}  // namespace nvp::markov
