#pragma once

#include "src/linalg/dense_matrix.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/solver_config.hpp"
#include "src/petri/reachability.hpp"

namespace nvp::markov {

/// Rate-independent skeleton of the solver's matrix assembly for one
/// reachability-graph structure: the deterministic-group partition (which
/// states enable which deterministic transition) and the CSR slot patterns
/// of the sparse generators. Building it costs one pass over the edges plus
/// the pattern sorts; solving with a cached plan skips exactly that work.
/// A plan is valid for any graph repoured() from the structure it was built
/// on — the edge topology, and hence every pattern and group, is identical.
struct AssemblyPlan {
  std::size_t states = 0;
  bool has_deterministic = false;
  /// Pure-CTMC structures only: slot pattern of sparse_generator().
  linalg::CsrPattern generator;

  /// One deterministic transition and the states that enable it; all
  /// members share the subordinated generator, delay, and transient.
  struct Group {
    std::size_t transition = 0;
    std::vector<std::size_t> members;
    std::vector<char> in_set;  ///< membership mask over all states
    linalg::CsrPattern subordinated;
  };
  /// Ordered by deterministic transition index (the iteration order the
  /// fused solver used).
  std::vector<Group> groups;

  /// Optional state lumping for matrix-free warm starts: class_of_state
  /// (size `states`) and the class count. build_assembly_plan leaves it
  /// empty — the partition is model-layer knowledge (the (i, j, k)
  /// classification of homogeneous perception models, or the per-group
  /// count-vector classification of module-group models; the indices here
  /// are opaque either way) that the staged pipeline fills in after
  /// classification. Solvers must treat it as a hint only.
  std::vector<std::size_t> lumping;
  std::size_t lumping_classes = 0;
};

/// Builds the assembly plan of a graph's structure.
AssemblyPlan build_assembly_plan(const petri::TangibleReachabilityGraph& g);

/// Result of a stationary DSPN analysis.
struct DspnSteadyStateResult {
  /// Stationary probability of each tangible marking.
  linalg::Vector probabilities;
  /// True if the model degenerated to a plain CTMC (no deterministic
  /// transition enabled anywhere).
  bool pure_ctmc = false;
  /// Number of tangible states.
  std::size_t states = 0;
  /// The backend that actually solved (kDense or kSparse, never kAuto).
  SolverBackend backend_used = SolverBackend::kDense;
  /// Stored nonzeros of the solver's main matrices — embedded chain +
  /// conversion factors for the MRGP path, the generator for the pure-CTMC
  /// path. The dense backend reports its full n^2 allocations, so
  /// sparse-vs-dense memory is directly comparable.
  std::size_t matrix_nonzeros = 0;
};

/// Stationary solver for DSPNs under the classical restriction that at most
/// one deterministic transition is enabled in any tangible marking
/// (Ajmone Marsan & Chiola; Lindemann; German). Implements the method of the
/// embedded Markov chain over regeneration points:
///
///  * In a tangible marking without an enabled deterministic transition the
///    regeneration period is the (exponential) sojourn; the embedded-chain
///    row is the usual competing-exponentials distribution.
///  * In a marking that enables deterministic transition d (constant delay
///    tau, enabling-memory policy), the subordinated CTMC runs over the
///    exponential transitions for up to tau time units. States in which d is
///    no longer enabled are absorbing: entering one resets d's timer and is
///    itself a regeneration point. If the process survives in the enabling
///    set until tau, d fires and the marking switches according to the
///    (vanishing-eliminated) firing distribution.
///
/// The transient quantities exp(Q_d tau) and \int_0^tau exp(Q_d t) dt are
/// computed by uniformization with doubling (see transient.hpp) once per
/// deterministic transition and shared by all starting states, and the
/// stationary distribution follows from the embedded chain's stationary
/// vector weighted by expected sojourn (conversion) factors.
///
/// Nets with no deterministic transition are solved directly as CTMCs, so
/// this is the single entry point used by the reliability analyzer for both
/// paper models.
///
/// Three backends implement the same mathematics (Options::backend): the
/// original dense path (LU + matrix-exponential doubling, the oracle), a
/// sparse path (CSR assembly from the reachability graph, per-row vector
/// uniformization fanned out on the runtime pool, Krylov stationary
/// solves), and a matrix-free path that never assembles the embedded chain
/// (see matrix_free.hpp). kAuto switches on the state count and model
/// class — see dispatch_backend().
class DspnSteadyStateSolver {
 public:
  /// All solver knobs now live in the shared markov::SolverConfig value
  /// type (one canonical hash for cache and coalescing keys); the alias
  /// keeps the historic DspnSteadyStateSolver::Options spelling working.
  using Options = SolverConfig;

  DspnSteadyStateSolver() = default;
  explicit DspnSteadyStateSolver(Options options) : options_(options) {}

  /// Computes the stationary distribution over tangible markings.
  /// Throws SolverError if a tangible marking enables two or more
  /// deterministic transitions, or if a state is absorbing.
  DspnSteadyStateResult solve(const petri::TangibleReachabilityGraph& g) const;

  /// Same computation with a prebuilt (typically cached) assembly plan for
  /// the graph's structure, skipping the group partition and the CSR
  /// pattern sorts. Bit-identical to solve(g); the plan must come from
  /// build_assembly_plan() on this graph or on any graph sharing its
  /// structure (repoured() copies).
  DspnSteadyStateResult solve(const petri::TangibleReachabilityGraph& g,
                              const AssemblyPlan& plan) const;

 private:
  Options options_{};
};

/// The backend a config resolves to for a model of `states` tangible states
/// (never kAuto): an explicit backend wins; kAuto picks dense below the
/// class threshold, kSparse at/above sparse_threshold for pure CTMCs (their
/// generators are O(n) sparse), and kMatrixFree at/above
/// mrgp_matrix_free_threshold for MRGPs (their *embedded chains* are
/// near-dense, so explicit sparse assembly never wins — it stays reachable
/// only when forced).
SolverBackend dispatch_backend(const SolverConfig& config, std::size_t states,
                               bool has_deterministic);

}  // namespace nvp::markov
