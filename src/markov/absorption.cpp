#include "src/markov/absorption.hpp"

#include <limits>

#include "src/linalg/lu.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/transient.hpp"
#include "src/util/contracts.hpp"

namespace nvp::markov {

using linalg::DenseMatrix;
using linalg::Vector;

namespace {

/// Indices of states that can reach the target set (graph search on the
/// reversed transition structure).
std::vector<bool> can_reach(const DenseMatrix& q,
                            const std::vector<bool>& target) {
  const std::size_t n = q.rows();
  std::vector<bool> reach = target;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (reach[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && q(i, j) > 0.0 && reach[j]) {
          reach[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return reach;
}

}  // namespace

AbsorptionResult mean_time_to_absorption(const DenseMatrix& generator,
                                         const std::vector<bool>& target) {
  const std::size_t n = generator.rows();
  NVP_EXPECTS(generator.cols() == n);
  NVP_EXPECTS(target.size() == n);
  bool any_target = false;
  for (bool t : target) any_target |= t;
  NVP_EXPECTS_MSG(any_target, "target set must be non-empty");

  const auto reachable = can_reach(generator, target);

  // A state has a finite expected hitting time only when absorption is
  // almost sure: it must not be able to reach a state from which the
  // target is unreachable.
  std::vector<bool> dead(n, false);
  for (std::size_t i = 0; i < n; ++i) dead[i] = !target[i] && !reachable[i];
  const auto uncertain = can_reach(generator, dead);

  std::vector<std::size_t> transient;
  for (std::size_t i = 0; i < n; ++i)
    if (!target[i] && reachable[i] && !uncertain[i])
      transient.push_back(i);

  AbsorptionResult result;
  result.expected_time.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (!target[i] && (!reachable[i] || uncertain[i]))
      result.expected_time[i] = std::numeric_limits<double>::infinity();
  if (transient.empty()) return result;

  // Solve Q_TT h = -1 (h = expected hitting times of transient states).
  // By construction, transient states only flow into other transient
  // states or the target.
  const std::size_t m = transient.size();
  DenseMatrix a(m, m, 0.0);
  Vector b(m, -1.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t i = transient[r];
    for (std::size_t c = 0; c < m; ++c) a(r, c) = generator(i, transient[c]);
  }
  const Vector h = linalg::LuDecomposition(std::move(a)).solve(b);
  for (std::size_t r = 0; r < m; ++r)
    result.expected_time[transient[r]] = h[r];
  return result;
}

Vector absorption_probability_by(const DenseMatrix& generator,
                                 const std::vector<bool>& target,
                                 double t) {
  const std::size_t n = generator.rows();
  NVP_EXPECTS(generator.cols() == n);
  NVP_EXPECTS(target.size() == n);
  NVP_EXPECTS(t >= 0.0);

  // Make target states absorbing and propagate each unit vector; cheaper:
  // one matrix-exponential pair and read columns. For moderate n the full
  // matrix is fine.
  DenseMatrix q = generator;
  for (std::size_t i = 0; i < n; ++i)
    if (target[i])
      for (std::size_t j = 0; j < n; ++j) q(i, j) = 0.0;

  const auto pair = matrix_exponential_pair(q, t);
  Vector out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double mass = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (target[j]) mass += pair.omega(i, j);
    out[i] = mass;
  }
  return out;
}

}  // namespace nvp::markov
