#include "src/markov/rewards.hpp"

#include <map>

#include "src/util/contracts.hpp"

namespace nvp::markov {

double expected_reward(const petri::TangibleReachabilityGraph& g,
                       const linalg::Vector& pi,
                       const MarkingReward& reward) {
  NVP_EXPECTS(pi.size() == g.size());
  NVP_EXPECTS(reward != nullptr);
  double acc = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s)
    acc += pi[s] * reward(g.marking(s));
  return acc;
}

linalg::Vector reward_vector(const petri::TangibleReachabilityGraph& g,
                             const MarkingReward& reward) {
  NVP_EXPECTS(reward != nullptr);
  linalg::Vector out(g.size(), 0.0);
  for (std::size_t s = 0; s < g.size(); ++s) out[s] = reward(g.marking(s));
  return out;
}

std::vector<std::pair<int, double>> mass_by_feature(
    const petri::TangibleReachabilityGraph& g, const linalg::Vector& pi,
    const std::function<int(const petri::Marking&)>& feature) {
  NVP_EXPECTS(pi.size() == g.size());
  std::map<int, double> acc;
  for (std::size_t s = 0; s < g.size(); ++s)
    acc[feature(g.marking(s))] += pi[s];
  return {acc.begin(), acc.end()};
}

}  // namespace nvp::markov
