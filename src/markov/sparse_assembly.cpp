#include "src/markov/sparse_assembly.hpp"

#include <algorithm>

#include "src/markov/ctmc.hpp"
#include "src/util/contracts.hpp"

namespace nvp::markov {

using linalg::SparseMatrixCsr;
using linalg::Triplet;

SparseMatrixCsr sparse_generator(const petri::TangibleReachabilityGraph& g) {
  const std::size_t n = g.size();
  NVP_EXPECTS(n > 0);
  std::vector<Triplet> triplets;
  for (std::size_t s = 0; s < n; ++s) {
    if (!g.deterministics(s).empty())
      throw SolverError(
          "sparse_generator: state " + std::to_string(s) +
          " enables a deterministic transition; use the DSPN solver");
    for (const petri::RateEdge& e : g.exponential_edges(s)) {
      triplets.push_back({s, e.target, e.rate});
      triplets.push_back({s, s, -e.rate});
    }
  }
  return SparseMatrixCsr(n, n, std::move(triplets));
}

SparseMatrixCsr sparse_subordinated_generator(
    const petri::TangibleReachabilityGraph& g,
    const std::vector<char>& in_set) {
  const std::size_t n = g.size();
  NVP_EXPECTS(in_set.size() == n);
  std::vector<Triplet> triplets;
  for (std::size_t s = 0; s < n; ++s) {
    if (!in_set[s]) continue;
    for (const petri::RateEdge& e : g.exponential_edges(s)) {
      triplets.push_back({s, e.target, e.rate});
      triplets.push_back({s, s, -e.rate});
    }
  }
  return SparseMatrixCsr(n, n, std::move(triplets));
}

SparseMatrixCsr sparse_uniformized_dtmc(const SparseMatrixCsr& q,
                                        double lambda) {
  NVP_EXPECTS(q.rows() == q.cols());
  NVP_EXPECTS(lambda > 0.0);
  const std::size_t n = q.rows();
  std::vector<Triplet> triplets;
  triplets.reserve(q.nonzeros() + n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = q.row_begin(r); k < q.row_end(r); ++k)
      triplets.push_back({r, q.col_index(k), q.value(k) / lambda});
    triplets.push_back({r, r, 1.0});
  }
  return SparseMatrixCsr(n, n, std::move(triplets));
}

double sparse_uniformization_rate(const SparseMatrixCsr& q) {
  double lambda = 0.0;
  for (double d : q.diagonal()) lambda = std::max(lambda, -d);
  return lambda;
}

}  // namespace nvp::markov
