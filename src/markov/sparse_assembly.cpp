#include "src/markov/sparse_assembly.hpp"

#include <algorithm>

#include "src/markov/ctmc.hpp"
#include "src/util/contracts.hpp"

namespace nvp::markov {

using linalg::CsrPattern;
using linalg::SparseMatrixCsr;
using linalg::Triplet;

namespace {

/// Walks the generator slots of `g` in the canonical push order, invoking
/// emit(row, col, value) — the single source of truth for both the fused
/// assembly and the pattern/values split.
template <typename Emit>
void generator_slots(const petri::TangibleReachabilityGraph& g, Emit&& emit) {
  for (std::size_t s = 0; s < g.size(); ++s) {
    if (!g.deterministics(s).empty())
      throw SolverError(
          "sparse_generator: state " + std::to_string(s) +
          " enables a deterministic transition; use the DSPN solver");
    for (const petri::RateEdge& e : g.exponential_edges(s)) {
      emit(s, e.target, e.rate);
      emit(s, s, -e.rate);
    }
  }
}

template <typename Emit>
void subordinated_slots(const petri::TangibleReachabilityGraph& g,
                        const std::vector<char>& in_set, Emit&& emit) {
  NVP_EXPECTS(in_set.size() == g.size());
  for (std::size_t s = 0; s < g.size(); ++s) {
    if (!in_set[s]) continue;
    for (const petri::RateEdge& e : g.exponential_edges(s)) {
      emit(s, e.target, e.rate);
      emit(s, s, -e.rate);
    }
  }
}

template <typename Walk>
SparseMatrixCsr assemble(std::size_t n, Walk&& walk) {
  std::vector<Triplet> triplets;
  walk([&](std::size_t r, std::size_t c, double v) {
    triplets.push_back({r, c, v});
  });
  return SparseMatrixCsr(n, n, std::move(triplets));
}

template <typename Walk>
CsrPattern pattern_of(std::size_t n, Walk&& walk) {
  std::vector<Triplet> triplets;
  walk([&](std::size_t r, std::size_t c, double) {
    triplets.push_back({r, c, 0.0});
  });
  return CsrPattern(n, n, triplets);
}

template <typename Walk>
std::vector<double> values_of(Walk&& walk) {
  std::vector<double> values;
  walk([&](std::size_t, std::size_t, double v) { values.push_back(v); });
  return values;
}

}  // namespace

SparseMatrixCsr sparse_generator(const petri::TangibleReachabilityGraph& g) {
  NVP_EXPECTS(g.size() > 0);
  return assemble(g.size(),
                  [&](auto&& emit) { generator_slots(g, emit); });
}

CsrPattern sparse_generator_pattern(const petri::TangibleReachabilityGraph& g) {
  NVP_EXPECTS(g.size() > 0);
  return pattern_of(g.size(),
                    [&](auto&& emit) { generator_slots(g, emit); });
}

std::vector<double> sparse_generator_values(
    const petri::TangibleReachabilityGraph& g) {
  NVP_EXPECTS(g.size() > 0);
  return values_of([&](auto&& emit) { generator_slots(g, emit); });
}

SparseMatrixCsr sparse_subordinated_generator(
    const petri::TangibleReachabilityGraph& g,
    const std::vector<char>& in_set) {
  return assemble(g.size(),
                  [&](auto&& emit) { subordinated_slots(g, in_set, emit); });
}

CsrPattern sparse_subordinated_pattern(
    const petri::TangibleReachabilityGraph& g,
    const std::vector<char>& in_set) {
  return pattern_of(g.size(),
                    [&](auto&& emit) { subordinated_slots(g, in_set, emit); });
}

std::vector<double> sparse_subordinated_values(
    const petri::TangibleReachabilityGraph& g,
    const std::vector<char>& in_set) {
  return values_of([&](auto&& emit) { subordinated_slots(g, in_set, emit); });
}

SparseMatrixCsr sparse_uniformized_dtmc(const SparseMatrixCsr& q,
                                        double lambda) {
  NVP_EXPECTS(q.rows() == q.cols());
  NVP_EXPECTS(lambda > 0.0);
  const std::size_t n = q.rows();
  std::vector<Triplet> triplets;
  triplets.reserve(q.nonzeros() + n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = q.row_begin(r); k < q.row_end(r); ++k)
      triplets.push_back({r, q.col_index(k), q.value(k) / lambda});
    triplets.push_back({r, r, 1.0});
  }
  return SparseMatrixCsr(n, n, std::move(triplets));
}

double sparse_uniformization_rate(const SparseMatrixCsr& q) {
  double lambda = 0.0;
  for (double d : q.diagonal()) lambda = std::max(lambda, -d);
  return lambda;
}

}  // namespace nvp::markov
