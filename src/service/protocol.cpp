#include "src/service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/markov/ctmc.hpp"
#include "src/markov/fallback.hpp"
#include "src/markov/solver_config.hpp"
#include "src/obs/json.hpp"
#include "src/runtime/fnv.hpp"
#include "src/util/string_util.hpp"

namespace nvp::service {

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kEof: return "eof";
    case FrameStatus::kTooLarge: return "frame-too-large";
    case FrameStatus::kTruncated: return "truncated-frame";
    case FrameStatus::kIoError: return "io-error";
  }
  return "?";
}

const char* to_string(Method method) {
  switch (method) {
    case Method::kPing: return "ping";
    case Method::kAnalyze: return "analyze";
    case Method::kSweep: return "sweep";
    case Method::kSimulate: return "simulate";
    case Method::kMonitor: return "monitor";
    case Method::kStats: return "stats";
    case Method::kShutdown: return "shutdown";
  }
  return "?";
}

void append_frame(std::string& out, std::string_view payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out.append(payload.data(), payload.size());
}

namespace {

/// Reads exactly `size` bytes; 0 = clean EOF before the first byte,
/// -1 = EOF mid-buffer or error (errno preserved for the caller).
int read_exact(int fd, char* buffer, std::size_t size, bool* clean_eof) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, buffer + done, size - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      *clean_eof = done == 0;
      return -1;
    }
    if (errno == EINTR) continue;
    *clean_eof = false;
    return -1;
  }
  return 0;
}

}  // namespace

FrameStatus read_frame(int fd, std::string& payload,
                       std::uint32_t max_bytes) {
  unsigned char header[4];
  bool clean_eof = false;
  errno = 0;
  if (read_exact(fd, reinterpret_cast<char*>(header), 4, &clean_eof) != 0)
    return clean_eof ? FrameStatus::kEof
                     : (errno != 0 ? FrameStatus::kIoError
                                   : FrameStatus::kTruncated);
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > max_bytes) return FrameStatus::kTooLarge;
  payload.resize(length);
  if (length == 0) return FrameStatus::kOk;
  errno = 0;
  if (read_exact(fd, payload.data(), length, &clean_eof) != 0)
    return errno != 0 ? FrameStatus::kIoError : FrameStatus::kTruncated;
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 4);
  append_frame(framed, payload);
  std::size_t done = 0;
  while (done < framed.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing the
    // process with SIGPIPE.
    const ssize_t n = ::send(fd, framed.data() + done, framed.size() - done,
                             MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request parsing.

namespace {

bool parse_params(const wire::Value& node, core::SystemParameters* params,
                  std::string* error) {
  const std::string paper = node.string_or("paper", "6v");
  if (paper == "4v") {
    *params = core::SystemParameters::paper_four_version();
  } else if (paper == "6v") {
    *params = core::SystemParameters::paper_six_version();
  } else {
    *error = "params.paper must be \"4v\" or \"6v\"";
    return false;
  }
  params->n_versions =
      static_cast<int>(node.number_or("n", params->n_versions));
  params->max_faulty =
      static_cast<int>(node.number_or("f", params->max_faulty));
  params->max_rejuvenating =
      static_cast<int>(node.number_or("r", params->max_rejuvenating));
  params->alpha = node.number_or("alpha", params->alpha);
  params->p = node.number_or("p", params->p);
  params->p_prime = node.number_or("p-prime", params->p_prime);
  params->mean_time_to_compromise =
      node.number_or("mttc", params->mean_time_to_compromise);
  params->mean_time_to_failure =
      node.number_or("mttf", params->mean_time_to_failure);
  params->mean_time_to_repair =
      node.number_or("mttr", params->mean_time_to_repair);
  params->rejuvenation_interval =
      node.number_or("interval", params->rejuvenation_interval);
  params->rejuvenation_duration =
      node.number_or("duration", params->rejuvenation_duration);
  params->detection_rate =
      node.number_or("detection-rate", params->detection_rate);
  params->rejuvenation = node.bool_or("rejuvenation", params->rejuvenation);
  if (const wire::Value* groups = node.get("groups")) {
    if (!groups->is_array()) {
      *error = "params.groups must be an array of group objects";
      return false;
    }
    params->groups.clear();
    for (const wire::Value& entry : groups->array) {
      if (!entry.is_object()) {
        *error = "params.groups entries must be objects";
        return false;
      }
      core::ModuleGroup group;
      // Scalars the request leaves out inherit the campaign-level values,
      // so a request can harden one group without restating the rest.
      group.count = static_cast<int>(entry.number_or("count", 0));
      group.mean_time_to_compromise =
          entry.number_or("mttc", params->mean_time_to_compromise);
      group.mean_time_to_failure =
          entry.number_or("mttf", params->mean_time_to_failure);
      group.mean_time_to_repair =
          entry.number_or("mttr", params->mean_time_to_repair);
      group.p = entry.number_or("p", params->p);
      group.p_prime = entry.number_or("p-prime", params->p_prime);
      group.weight = entry.number_or("weight", 1.0);
      group.repair_degradation = entry.number_or("repair-degradation", 0.0);
      params->groups.push_back(group);
    }
    // Group counts fully determine N; an absent "n" means "derive it"
    // rather than "keep the paper preset's module count".
    if (node.get("n") == nullptr) {
      int total = 0;
      for (const core::ModuleGroup& g : params->groups) total += g.count;
      params->n_versions = total;
    }
  }
  try {
    params->validate();
  } catch (const std::exception& e) {
    *error = util::format("invalid params: %s", e.what());
    return false;
  }
  return true;
}

/// Overlays the request's `options` object onto `*options`, which the
/// caller seeds (the daemon seeds its own analyzer configuration). Keys
/// absent from the node keep the seeded value — the CLI client only
/// forwards flags the user typed, so absence means "the daemon's default",
/// not "the library's default".
bool parse_options(const wire::Value& node,
                   core::ReliabilityAnalyzer::Options* options,
                   std::string* error) {
  if (node.get("convention") != nullptr) {
    const std::string convention = node.string_or("convention", "");
    if (convention == "verbatim")
      options->convention = core::RewardConvention::kPaperVerbatim;
    else if (convention == "generalized")
      options->convention = core::RewardConvention::kGeneralized;
    else if (convention == "strict")
      options->convention = core::RewardConvention::kStrict;
    else {
      *error = "options.convention must be verbatim|generalized|strict";
      return false;
    }
  }
  if (node.get("attachment") != nullptr) {
    const std::string attachment = node.string_or("attachment", "");
    if (attachment == "operational")
      options->attachment = core::RewardAttachment::kOperationalStatesOnly;
    else if (attachment == "appendix")
      options->attachment = core::RewardAttachment::kAppendixMatrices;
    else {
      *error = "options.attachment must be operational|appendix";
      return false;
    }
  }
  if (node.get("solver") != nullptr) {
    const std::string solver = node.string_or("solver", "");
    const auto backend = markov::parse_backend(solver);
    if (!backend) {
      *error = "options.solver must be auto|dense|sparse|mfree";
      return false;
    }
    options->solver.backend = *backend;
  }
  const std::string fallback = node.string_or("fallback", "");
  if (!fallback.empty()) {
    try {
      options->solver.fallback.stages = markov::parse_fallback_stages(fallback);
    } catch (const std::exception& e) {
      *error = util::format("invalid options.fallback: %s", e.what());
      return false;
    }
  }
  // Full-config overlay, applied after the legacy keys so an explicit spec
  // wins. The same spec grammar nvpcli --solver-config speaks.
  const std::string solver_config = node.string_or("solver_config", "");
  if (!solver_config.empty()) {
    try {
      options->solver.apply(solver_config);
    } catch (const std::exception& e) {
      *error = util::format("invalid options.solver_config: %s", e.what());
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_request(const wire::Value& payload, Request* request,
                   std::string* error) {
  if (!payload.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  request->id = payload.u64_or("id", 0);
  const std::string method = payload.string_or("method", "");
  if (method == "ping")
    request->method = Method::kPing;
  else if (method == "analyze")
    request->method = Method::kAnalyze;
  else if (method == "sweep")
    request->method = Method::kSweep;
  else if (method == "simulate")
    request->method = Method::kSimulate;
  else if (method == "monitor")
    request->method = Method::kMonitor;
  else if (method == "stats")
    request->method = Method::kStats;
  else if (method == "shutdown")
    request->method = Method::kShutdown;
  else {
    *error = method.empty() ? "request lacks a method"
                            : util::format("unknown method '%s'",
                                           method.c_str());
    return false;
  }
  request->deadline_ms = payload.number_or("deadline_ms", 0.0);
  if (request->deadline_ms < 0.0) {
    *error = "deadline_ms must be non-negative";
    return false;
  }

  const bool needs_model = request->method == Method::kAnalyze ||
                           request->method == Method::kSweep ||
                           request->method == Method::kSimulate ||
                           request->method == Method::kMonitor;
  if (!needs_model) return true;

  const wire::Value* params_node = payload.get("params");
  static const wire::Value kEmptyObject = [] {
    wire::Value v;
    v.type = wire::Value::Type::kObject;
    return v;
  }();
  if (params_node == nullptr) params_node = &kEmptyObject;
  if (!params_node->is_object()) {
    *error = "params must be an object";
    return false;
  }
  if (!parse_params(*params_node, &request->params, error)) return false;

  const wire::Value* options_node = payload.get("options");
  if (options_node != nullptr) {
    if (!options_node->is_object()) {
      *error = "options must be an object";
      return false;
    }
    if (!parse_options(*options_node, &request->options, error)) return false;
  }

  if (request->method == Method::kSweep) {
    const wire::Value* sweep = payload.get("sweep");
    if (sweep == nullptr || !sweep->is_object()) {
      *error = "sweep requests need a sweep object";
      return false;
    }
    request->sweep_param = sweep->string_or("param", "interval");
    if (request->sweep_param != "interval" && request->sweep_param != "mttc" &&
        request->sweep_param != "alpha" && request->sweep_param != "p" &&
        request->sweep_param != "p-prime") {
      *error = "sweep.param must be one of interval|mttc|alpha|p|p-prime";
      return false;
    }
    request->sweep_from = sweep->number_or("from", 0.0);
    request->sweep_to = sweep->number_or("to", 0.0);
    request->sweep_points =
        static_cast<std::size_t>(sweep->number_or("points", 15.0));
    if (!(request->sweep_to > request->sweep_from) ||
        request->sweep_points < 2) {
      *error = "sweep needs from < to and points >= 2";
      return false;
    }
    if (request->sweep_points > 100000) {
      *error = "sweep.points exceeds the per-request limit (100000)";
      return false;
    }
  }
  if (request->method == Method::kSimulate) {
    const wire::Value* sim = payload.get("simulate");
    if (sim != nullptr) {
      if (!sim->is_object()) {
        *error = "simulate must be an object";
        return false;
      }
      request->sim_horizon = sim->number_or("horizon", request->sim_horizon);
      request->sim_replications = static_cast<std::size_t>(
          sim->number_or("reps", double(request->sim_replications)));
      request->sim_seed = sim->u64_or("seed", request->sim_seed);
    }
    if (!(request->sim_horizon > 0.0) || request->sim_replications == 0) {
      *error = "simulate needs horizon > 0 and reps >= 1";
      return false;
    }
  }
  if (request->method == Method::kMonitor) {
    const wire::Value* mon = payload.get("monitor");
    if (mon != nullptr) {
      if (!mon->is_object()) {
        *error = "monitor must be an object";
        return false;
      }
      request->mon_schedule = mon->string_or("schedule",
                                             request->mon_schedule);
      request->mon_horizon = mon->number_or("horizon", request->mon_horizon);
      request->mon_multiplier =
          mon->number_or("multiplier", request->mon_multiplier);
      request->mon_period = mon->number_or("period", request->mon_period);
      request->mon_segment = mon->number_or("segment", request->mon_segment);
      request->mon_policy = mon->string_or("policy", request->mon_policy);
      request->mon_update_every =
          mon->number_or("update_every", request->mon_update_every);
      request->mon_interval_lo =
          mon->number_or("interval_lo", request->mon_interval_lo);
      request->mon_interval_hi =
          mon->number_or("interval_hi", request->mon_interval_hi);
      request->mon_grid_points = static_cast<std::size_t>(
          mon->number_or("grid_points", double(request->mon_grid_points)));
      request->mon_band = mon->number_or("band", request->mon_band);
      request->mon_seed = mon->u64_or("seed", request->mon_seed);
    }
    if (request->mon_schedule != "step" && request->mon_schedule != "ramp" &&
        request->mon_schedule != "sinusoid") {
      *error = "monitor.schedule must be one of step|ramp|sinusoid";
      return false;
    }
    if (request->mon_policy != "hysteresis" &&
        request->mon_policy != "static") {
      *error = "monitor.policy must be one of hysteresis|static";
      return false;
    }
    if (!(request->mon_horizon > 0.0) || !(request->mon_multiplier >= 1.0) ||
        !(request->mon_period > 0.0) || !(request->mon_segment > 0.0) ||
        !(request->mon_update_every > 0.0)) {
      *error = "monitor needs horizon/period/segment/update_every > 0 and "
               "multiplier >= 1";
      return false;
    }
    if (!(request->mon_interval_hi > request->mon_interval_lo) ||
        !(request->mon_interval_lo > 0.0) || request->mon_grid_points < 2) {
      *error = "monitor needs 0 < interval_lo < interval_hi and "
               "grid_points >= 2";
      return false;
    }
    if (request->mon_horizon / request->mon_update_every > 100000.0) {
      *error = "monitor.horizon/update_every exceeds the per-request limit "
               "(100000 updates)";
      return false;
    }
  }
  return true;
}

std::uint64_t coalesce_key(const Request& request) {
  switch (request.method) {
    case Method::kAnalyze: {
      // The staged pipeline's canonical key: requests that would hit the
      // same whole-result cache entry share one solve.
      runtime::Fnv1a h;
      h.str("service.analyze");
      h.u64(core::analysis_cache_key(request.params, request.options));
      return h.digest();
    }
    case Method::kSweep: {
      runtime::Fnv1a h;
      h.str("service.sweep");
      h.u64(core::analysis_cache_key(request.params, request.options));
      h.str(request.sweep_param);
      h.f64(request.sweep_from);
      h.f64(request.sweep_to);
      h.u64(request.sweep_points);
      return h.digest();
    }
    default:
      return 0;
  }
}

// ---------------------------------------------------------------------------
// Response rendering.

std::string ok_response(std::uint64_t id, std::string_view result_json) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("id", static_cast<std::uint64_t>(id));
  json.kv("ok", true);
  json.end_object();
  // Splice the prebuilt result bytes in unmodified, so every coalesced
  // waiter receives an identical `result` object.
  std::string out = json.str();
  out.pop_back();  // '}'
  out += ",\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string error_response(std::uint64_t id, const fault::ErrorInfo& error,
                           double retry_after_ms) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("id", static_cast<std::uint64_t>(id));
  json.kv("ok", false);
  json.key("error").begin_object();
  json.kv("category", fault::to_string(error.category));
  json.kv("message", error.message);
  if (!error.site.empty()) json.kv("site", error.site);
  if (!error.causes.empty()) {
    json.key("causes").begin_array();
    for (const auto& cause : error.causes) json.value(cause);
    json.end_array();
  }
  if (retry_after_ms > 0.0) json.kv("retry_after_ms", retry_after_ms);
  json.end_object().end_object();
  return json.str();
}

std::string analyze_result_json(const core::AnalysisResult& analysis) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("expected_reliability", analysis.expected_reliability);
  json.kv("tangible_states",
          static_cast<std::uint64_t>(analysis.tangible_states));
  json.kv("solver", analysis.used_dspn_solver ? "MRGP" : "CTMC");
  json.kv("backend", markov::to_string(analysis.backend_used));
  json.kv("matrix_nonzeros",
          static_cast<std::uint64_t>(analysis.matrix_nonzeros));
  json.end_object();
  return json.str();
}

}  // namespace nvp::service
