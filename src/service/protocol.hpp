#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/analyzer.hpp"
#include "src/core/params.hpp"
#include "src/fault/error.hpp"
#include "src/service/wire.hpp"

namespace nvp::service {

/// nvpd wire format: length-prefixed JSON. Every message is one frame —
/// a 4-byte big-endian payload length followed by that many bytes of JSON.
/// Requests and responses share the framing; a connection carries any number
/// of frames, and responses may arrive out of order (match on `id`).
///
/// Request object:
///   { "id": <u64>, "method": "ping"|"analyze"|"sweep"|"simulate"|
///                            "monitor"|"stats"|"shutdown",
///     "deadline_ms": <ms, optional>,
///     "params":  { "paper": "4v"|"6v", ...numeric overrides... },
///     "options": { "convention": ..., "attachment": ..., "solver": ...,
///                  "fallback": "stage,stage,..." },
///     "sweep":    { "param": ..., "from": ..., "to": ..., "points": ... },
///     "simulate": { "horizon": ..., "reps": ..., "seed": ... },
///     "monitor":  { "schedule": ..., "horizon": ..., "multiplier": ...,
///                   "period": ..., "segment": ..., "policy": ...,
///                   "update_every": ..., "interval_lo": ...,
///                   "interval_hi": ..., "grid_points": ..., "band": ...,
///                   "seed": ... } }
///
/// Response object:
///   { "id": <u64>, "ok": true,  "result": { ... } }
///   { "id": <u64>, "ok": false, "error": { "category": ..., "message": ...,
///       "site": ..., "retry_after_ms": <only on queue rejection> } }
///
/// Framing errors (oversized / truncated / non-JSON payloads) produce a
/// structured error response with id 0 and close the connection, since the
/// byte stream can no longer be trusted to be frame-aligned.

/// Upper bound a peer will accept for one frame payload. Large enough for a
/// wide sweep response, small enough that a hostile length prefix cannot
/// make the peer allocate gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/// Outcome of reading one frame from a stream.
enum class FrameStatus {
  kOk,        ///< payload filled
  kEof,       ///< clean end of stream before a header byte
  kTooLarge,  ///< length prefix exceeds the limit; stream is poisoned
  kTruncated, ///< stream ended mid-header or mid-payload
  kIoError,   ///< read(2) failed
};
const char* to_string(FrameStatus status);

/// Appends the 4-byte header + payload to `out` (in-memory framing for
/// batched writes and tests).
void append_frame(std::string& out, std::string_view payload);

/// Blocking frame read from a file descriptor. Retries EINTR; returns
/// kEof only on a clean close at a frame boundary.
FrameStatus read_frame(int fd, std::string& payload,
                       std::uint32_t max_bytes = kMaxFrameBytes);

/// Blocking frame write (single writev-style buffer; retries EINTR and
/// short writes, suppresses SIGPIPE). False on any write failure.
bool write_frame(int fd, std::string_view payload);

// ---------------------------------------------------------------------------
// Typed requests.

enum class Method {
  kPing, kAnalyze, kSweep, kSimulate, kMonitor, kStats, kShutdown
};
const char* to_string(Method method);

/// One parsed protocol request. Defaults mirror the CLI's.
struct Request {
  std::uint64_t id = 0;
  Method method = Method::kPing;
  double deadline_ms = 0.0;  ///< 0 = no deadline

  core::SystemParameters params;
  /// Solver/reward options the solve must run with. parse_request overlays
  /// only the keys present in the request's `options` object onto whatever
  /// the caller seeded here — the server seeds its own analyzer
  /// configuration, so absent keys inherit the daemon's defaults.
  core::ReliabilityAnalyzer::Options options;

  // sweep
  std::string sweep_param = "interval";
  double sweep_from = 0.0;
  double sweep_to = 0.0;
  std::size_t sweep_points = 0;

  // simulate
  double sim_horizon = 1.0e6;
  std::size_t sim_replications = 8;
  std::uint64_t sim_seed = 1;

  // monitor — kept as plain fields (not a monitor::SessionConfig) so the
  // protocol layer stays decoupled from the monitor subsystem; the server
  // assembles the session config at execution time.
  std::string mon_schedule = "step";
  double mon_horizon = 200000.0;
  double mon_multiplier = 8.0;
  double mon_period = 60000.0;
  double mon_segment = 2000.0;
  std::string mon_policy = "hysteresis";
  double mon_update_every = 2500.0;
  double mon_interval_lo = 60.0;
  double mon_interval_hi = 3000.0;
  std::size_t mon_grid_points = 10;
  double mon_band = 0.15;
  std::uint64_t mon_seed = 1;
};

/// Parses a decoded JSON payload into a Request. On failure returns false
/// and fills `*error` with a one-line message (the caller wraps it in an
/// invalid-request response; the connection stays usable — the frame itself
/// was well-formed).
bool parse_request(const wire::Value& payload, Request* request,
                   std::string* error);

/// Canonical identity of a request for in-flight coalescing: requests with
/// equal keys are guaranteed to produce identical result payloads, so they
/// can share one solve. analyze keys reuse the staged pipeline's
/// analysis_cache_key; sweep keys extend it with the sweep spec. Returns 0
/// for methods that never coalesce (simulate and monitor are seed-dependent
/// stochastic work; ping/stats/shutdown are trivial).
std::uint64_t coalesce_key(const Request& request);

// ---------------------------------------------------------------------------
// Response rendering. Result payloads are built once per solve and spliced
// into each coalesced waiter's envelope, so identical requests receive
// byte-identical `result` objects by construction.

/// { "id": <id>, "ok": true, "result": <result_json> }
std::string ok_response(std::uint64_t id, std::string_view result_json);

/// { "id": <id>, "ok": false, "error": { ... } }. `retry_after_ms` > 0 adds
/// the queue-rejection retry hint.
std::string error_response(std::uint64_t id, const fault::ErrorInfo& error,
                           double retry_after_ms = 0.0);

/// Renders the analyze result payload for a RunResult's AnalysisResult.
std::string analyze_result_json(const core::AnalysisResult& analysis);

}  // namespace nvp::service
