#include "src/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/util/string_util.hpp"

namespace nvp::service {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& host, int port, std::string* error) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    if (error) *error = "invalid address '" + host + "'";
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    if (error)
      *error = util::format("connect %s:%d: %s", host.c_str(), port,
                            why.c_str());
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::send(std::string_view request_json) {
  if (fd_ < 0) return false;
  return write_frame(fd_, request_json);
}

std::optional<Response> Client::receive(std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return std::nullopt;
  }
  std::string payload;
  const FrameStatus status = read_frame(fd_, payload);
  if (status != FrameStatus::kOk) {
    if (error) *error = std::string("frame: ") + to_string(status);
    return std::nullopt;
  }
  std::string parse_error;
  auto document = wire::parse(payload, &parse_error);
  if (!document) {
    if (error) *error = parse_error;
    return std::nullopt;
  }
  Response response;
  response.raw = std::move(payload);
  response.document = std::move(*document);
  response.id = response.document.u64_or("id", 0);
  response.ok = response.document.bool_or("ok", false);
  response.result = response.document.get("result");
  response.error = response.document.get("error");
  if (response.ok && response.result == nullptr) {
    if (error) *error = "ok response without result";
    return std::nullopt;
  }
  if (!response.ok && response.error == nullptr) {
    if (error) *error = "error response without error object";
    return std::nullopt;
  }
  return response;
}

std::optional<Response> Client::call(std::uint64_t id,
                                     std::string_view request_json,
                                     std::string* error) {
  if (!send(request_json)) {
    if (error) *error = "send failed (connection closed?)";
    return std::nullopt;
  }
  auto response = receive(error);
  if (!response) return std::nullopt;
  if (response->id != id) {
    if (error)
      *error = util::format("response id %llu does not match request id %llu",
                            static_cast<unsigned long long>(response->id),
                            static_cast<unsigned long long>(id));
    return std::nullopt;
  }
  return response;
}

bool parse_endpoint(const std::string& endpoint, std::string* host,
                    int* port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = endpoint;
  const std::size_t colon = endpoint.rfind(':');
  if (colon != std::string::npos) {
    host_part = endpoint.substr(0, colon);
    port_part = endpoint.substr(colon + 1);
    if (host_part.empty()) host_part = "127.0.0.1";
  }
  if (port_part.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(port_part.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value <= 0 || value > 65535)
    return false;
  *host = host_part;
  *port = static_cast<int>(value);
  return true;
}

}  // namespace nvp::service
