#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/engine.hpp"
#include "src/service/protocol.hpp"

namespace nvp::service {

/// Point-in-time service counters (the `stats` protocol response and the
/// CLI's --cache-stats service block read the same numbers). All counts are
/// process-lifetime totals from the obs registry.
struct ServiceStats {
  std::uint64_t requests = 0;         ///< work requests admitted or rejected
  std::uint64_t executed = 0;         ///< engine runs performed by workers
  std::uint64_t coalesced = 0;        ///< requests that shared another solve
  std::uint64_t rejected = 0;         ///< queue-full rejections
  std::uint64_t deadline_missed = 0;  ///< responses degraded to deadline-exceeded
  std::uint64_t protocol_errors = 0;  ///< malformed frames / requests
  std::uint64_t responses = 0;        ///< response frames written
  std::size_t queue_depth = 0;        ///< tasks waiting right now
  std::size_t connections = 0;        ///< live connections right now
};

/// Reads the service counters out of the process-wide obs registry (all
/// zeros when no server ran — the batch CLI prints the same block).
ServiceStats service_stats();

/// Renders the `stats` result payload: service counters + the staged
/// pipeline's per-stage cache table + configuration echoes.
std::string stats_result_json(const ServiceStats& stats);

/// nvpd: a long-running daemon fronting core::Engine over the length-
/// prefixed JSON protocol. The request path is
///
///   reader -> admission (bounded queue, backpressure) -> coalesce
///          -> worker pool -> engine -> envelope -> response
///
/// * Bounded admission: at most `queue_capacity` solves wait; a request
///   that finds the queue full is rejected immediately with a structured
///   resource error carrying a retry_after_ms hint (load shedding, never
///   unbounded memory).
/// * Coalescing: work requests with equal coalesce_key() attach to the
///   in-flight task instead of occupying a queue slot; when the leader's
///   solve completes, the result payload is serialized once and every
///   attached request receives byte-identical result bytes.
/// * Per-request options: each solve runs with the daemon's analyzer
///   configuration overlaid with the request's `options` keys, and the
///   coalesce key hashes that same merged value — execution and coalescing
///   identity always agree on what the client asked for.
/// * Deadlines: a request's deadline_ms bounds queue wait + solve. Expiry
///   is checked at dequeue and again at completion, degrading into the
///   fault taxonomy's deadline-exceeded category. The deadline is never
///   threaded into solver options — that would give each request a
///   distinct staged-cache identity (see Engine::analyze_within).
/// * Degradation: the engine runs non-strict, so solver failures become
///   error envelopes per request (and per sweep point); the process never
///   aborts on a failed solve.
/// * The staged pipeline's caches are process-wide, so every request of
///   the daemon's lifetime shares one warm cache.
///
/// Shutdown is graceful: stop accepting, reject new work with a
/// shutting-down error, drain the queue and in-flight solves, flush every
/// response, then join all threads.
class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;                   ///< 0 = ephemeral (see Server::port())
    std::size_t workers = 0;        ///< solver threads; 0 = default_jobs()
    std::size_t queue_capacity = 1024;
    std::uint32_t max_frame_bytes = kMaxFrameBytes;
    /// Applied when a request carries no deadline_ms of its own; 0 = none.
    double default_deadline_ms = 0.0;
    /// SO_SNDTIMEO on accepted sockets: a peer that stops reading while
    /// responses queue up can pin a worker in send(2) at most this long
    /// before the connection is dropped (and its pending responses
    /// settled), so shutdown()'s drain wait cannot hang on a dead client.
    /// 0 disables the timeout.
    double send_timeout_ms = 10000.0;
    /// Base solver/reward configuration. Requests overlay their `options`
    /// keys on top of this per request (see parse_request).
    core::ReliabilityAnalyzer::Options analyzer;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads. Throws
  /// fault::Error (kResource) when the socket cannot be bound.
  void start();

  /// The bound port (after start(); resolves port 0 to the actual value).
  int port() const;

  /// Blocks until shutdown() completed or a peer requested shutdown via the
  /// protocol. In the latter case the caller still runs shutdown() itself
  /// (the request handler cannot join the thread it runs on).
  void wait();

  /// Graceful stop: reject new work, drain in-flight, flush responses,
  /// join every thread. Idempotent.
  void shutdown();

  /// True once shutdown() has completed.
  bool stopped() const;

  /// True once a shutdown was requested (protocol request or shutdown()).
  bool shutdown_requested() const;

  const Options& options() const { return options_; }

 private:
  struct Connection;
  struct Task;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();

  /// Handles one parsed frame payload on the reader thread. Returns false
  /// when the connection must close (framing no longer trustworthy).
  bool handle_payload(const std::shared_ptr<Connection>& conn,
                      const std::string& payload);
  void admit(const std::shared_ptr<Connection>& conn, Request request);
  std::string run_engine(const Request& request, bool* ok,
                         fault::ErrorInfo* error);

  /// Writes one response frame and settles the request's drain accounting
  /// (release the connection's pending slot, wake the shutdown drain wait).
  void respond(const std::shared_ptr<Connection>& conn,
               std::string_view response);
  void finish_one();  ///< decrements in-flight, wakes the drain waiter

  Options options_;

  int listen_fd_ = -1;
  int bound_port_ = 0;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex conn_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  // Admission queue + coalescing index (one mutex: attach/enqueue/complete
  // must be atomic with respect to each other).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Task>> in_flight_keys_;

  // Drain accounting: responses still owed by admitted work requests.
  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t pending_responses_ = 0;

  // Lifecycle flags. draining_ / stopped_ / shutdown_requested_ are atomics
  // because readers and workers consult them outside any lock; stores that
  // wait()'s predicate reads (shutdown_requested_, stopped_) happen under
  // state_mutex_ before notifying state_cv_, so the waiter cannot evaluate
  // the predicate and then miss the wakeup. workers_stopping_ is guarded by
  // queue_mutex_ (workers re-check it under the queue lock).
  std::mutex shutdown_mutex_;  ///< serializes shutdown() callers
  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool workers_stopping_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace nvp::service
