#include "src/service/wire.hpp"

#include <cctype>
#include <cstdlib>

#include "src/obs/json.hpp"
#include "src/util/string_util.hpp"

namespace nvp::service::wire {

const Value* Value::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::uint64_t Value::u64_or(std::string_view key,
                            std::uint64_t fallback) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_number() || v->number < 0.0) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

std::string Value::string_or(std::string_view key,
                             const std::string& fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

bool Value::bool_or(std::string_view key, bool fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_bool() ? v->boolean : fallback;
}

namespace {

/// Nesting bound: protocol requests are a few levels deep; anything deeper
/// is hostile or broken input, and a fixed cap keeps the recursive parser
/// safe from stack exhaustion.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = util::format("json: %s at offset %zu", what.c_str(), pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail(util::format("expected '%.*s'",
                               static_cast<int>(word.size()), word.data()));
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key string");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      Value value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      Value value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (!append_unicode_escape(out)) return false;
          break;
        }
        default:
          return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  /// \uXXXX (with surrogate pairs) encoded back to UTF-8.
  bool append_unicode_escape(std::string& out) {
    std::uint32_t code = 0;
    if (!read_hex4(code)) return false;
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        return fail("unpaired surrogate in \\u escape");
      pos_ += 2;
      std::uint32_t low = 0;
      if (!read_hex4(low)) return false;
      if (low < 0xDC00 || low > 0xDFFF)
        return fail("invalid low surrogate in \\u escape");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return fail("unpaired surrogate in \\u escape");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return true;
  }

  bool read_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("invalid hex digit in \\u escape");
    }
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return fail("invalid value");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (eat('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("digit required after decimal point");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("digit required in exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.type = Value::Type::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

namespace {

void dump_into(const Value& value, obs::JsonWriter& json) {
  switch (value.type) {
    case Value::Type::kNull:
      json.null();
      return;
    case Value::Type::kBool:
      json.value(value.boolean);
      return;
    case Value::Type::kNumber:
      json.value(value.number);
      return;
    case Value::Type::kString:
      json.value(value.string);
      return;
    case Value::Type::kArray:
      json.begin_array();
      for (const Value& element : value.array) dump_into(element, json);
      json.end_array();
      return;
    case Value::Type::kObject:
      json.begin_object();
      for (const auto& [key, member] : value.object) {
        json.key(key);
        dump_into(member, json);
      }
      json.end_object();
      return;
  }
}

}  // namespace

std::string dump(const Value& value) {
  obs::JsonWriter json;
  dump_into(value, json);
  return json.str();
}

}  // namespace nvp::service::wire
