#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/service/protocol.hpp"
#include "src/service/wire.hpp"

namespace nvp::service {

/// A decoded response envelope. `result` / `error` point into `document`'s
/// tree; copy out what outlives the Response.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::string raw;                  ///< the payload bytes as received
  wire::Value document;             ///< the whole response object
  const wire::Value* result = nullptr;  ///< set when ok
  const wire::Value* error = nullptr;   ///< set when !ok
};

/// Blocking client for the nvpd protocol: one TCP connection, synchronous
/// call() (send a frame, read frames until the matching id arrives — the
/// server may interleave other responses on a shared connection, but this
/// client is single-request so arrival order is response order). Used by
/// `nvpcli --remote`, the tests, and as the building block loadgen's
/// pipelined connections bypass (they frame by hand).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port. False (with `*error` filled) on failure.
  bool connect(const std::string& host, int port, std::string* error);
  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one request payload (JSON text) as a frame. False on I/O error.
  bool send(std::string_view request_json);

  /// Reads the next response frame and decodes its envelope. nullopt on
  /// EOF / framing / parse failure (`*error` says which).
  std::optional<Response> receive(std::string* error);

  /// send() + receive() with an id check.
  std::optional<Response> call(std::uint64_t id, std::string_view request_json,
                               std::string* error);

 private:
  int fd_ = -1;
};

/// Parses "host:port" (host defaults to 127.0.0.1 when the string is just a
/// port). False on malformed input.
bool parse_endpoint(const std::string& endpoint, std::string* host, int* port);

}  // namespace nvp::service
