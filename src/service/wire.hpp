#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nvp::service::wire {

/// Parsed JSON value for the service protocol: the read-side counterpart of
/// obs::JsonWriter. A deliberately small recursive-descent parser — objects,
/// arrays, strings (with the RFC 8259 escapes), doubles, bools, null —
/// sufficient for protocol requests and for tools that re-read their own
/// JSON output (loadgen merging BENCH_service.json sections). Object member
/// order is preserved so re-emission is stable.
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member by key; nullptr when absent or not an object.
  const Value* get(std::string_view key) const;

  /// Typed accessors with fallbacks (used for optional request fields).
  double as_number(double fallback = 0.0) const {
    return is_number() ? number : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return is_bool() ? boolean : fallback;
  }
  const std::string& as_string(const std::string& fallback) const {
    return is_string() ? string : fallback;
  }

  /// Member lookup + typed access in one step.
  double number_or(std::string_view key, double fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  std::string string_or(std::string_view key,
                        const std::string& fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
};

/// Parses one JSON document (the whole input must be consumed apart from
/// trailing whitespace). Returns nullopt and fills `*error` (when non-null)
/// with a one-line position-tagged message on malformed input. Nesting depth
/// is bounded so hostile input cannot overflow the stack.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// Re-emits a Value as compact JSON (object member order preserved). Numbers
/// round-trip through obs::JsonWriter's shortest-representation formatting.
std::string dump(const Value& value);

}  // namespace nvp::service::wire
