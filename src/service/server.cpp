#include "src/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/core/staged.hpp"
#include "src/core/sweep.hpp"
#include "src/monitor/session.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/store/store.hpp"
#include "src/util/string_util.hpp"

namespace nvp::service {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& requests_total() {
  static obs::Counter& c = obs::Registry::global().counter("service.requests");
  return c;
}
obs::Counter& executed_total() {
  static obs::Counter& c = obs::Registry::global().counter("service.executed");
  return c;
}
obs::Counter& coalesced_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("service.coalesced");
  return c;
}
obs::Counter& rejected_total() {
  static obs::Counter& c = obs::Registry::global().counter("service.rejected");
  return c;
}
obs::Counter& deadline_missed_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("service.deadline_missed");
  return c;
}
obs::Counter& protocol_errors_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("service.protocol_errors");
  return c;
}
obs::Counter& responses_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("service.responses");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("service.queue_depth");
  return g;
}
obs::Gauge& connections_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("service.connections");
  return g;
}
obs::Histogram& request_seconds() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("service.request_seconds");
  return h;
}

core::ParameterSetter setter_for_name(const std::string& name) {
  if (name == "interval") return core::set_rejuvenation_interval();
  if (name == "mttc") return core::set_mean_time_to_compromise();
  if (name == "alpha") return core::set_alpha();
  if (name == "p") return core::set_p();
  if (name == "p-prime") return core::set_p_prime();
  return nullptr;
}

fault::ErrorInfo make_error(fault::Category category, std::string message,
                            std::string site) {
  fault::ErrorInfo info;
  info.category = category;
  info.message = std::move(message);
  info.site = std::move(site);
  return info;
}

}  // namespace

ServiceStats service_stats() {
  ServiceStats stats;
  stats.requests = requests_total().value();
  stats.executed = executed_total().value();
  stats.coalesced = coalesced_total().value();
  stats.rejected = rejected_total().value();
  stats.deadline_missed = deadline_missed_total().value();
  stats.protocol_errors = protocol_errors_total().value();
  stats.responses = responses_total().value();
  stats.queue_depth = static_cast<std::size_t>(
      std::max(0.0, queue_depth_gauge().value()));
  stats.connections = static_cast<std::size_t>(
      std::max(0.0, connections_gauge().value()));
  return stats;
}

std::string stats_result_json(const ServiceStats& stats) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("service").begin_object();
  json.kv("requests", stats.requests);
  json.kv("executed", stats.executed);
  json.kv("coalesced", stats.coalesced);
  json.kv("rejected", stats.rejected);
  json.kv("deadline_missed", stats.deadline_missed);
  json.kv("protocol_errors", stats.protocol_errors);
  json.kv("responses", stats.responses);
  json.kv("queue_depth", static_cast<std::uint64_t>(stats.queue_depth));
  json.kv("connections", static_cast<std::uint64_t>(stats.connections));
  json.end_object();
  const auto caches = core::stage_cache_stats();
  const auto cache_block = [&](const char* name,
                               const runtime::CacheStats& s) {
    json.key(name).begin_object();
    json.kv("hits", static_cast<std::uint64_t>(s.hits));
    json.kv("misses", static_cast<std::uint64_t>(s.misses));
    json.kv("evictions", static_cast<std::uint64_t>(s.evictions));
    json.end_object();
  };
  json.key("caches").begin_object();
  cache_block("structure", caches.structure);
  cache_block("rates", caches.rates);
  cache_block("reward_table", caches.reward_table);
  cache_block("rewards", caches.rewards);
  cache_block("whole_result", caches.whole_result);
  json.end_object();
  if (store::Store* disk = store::global()) {
    const store::Stats s = disk->stats();
    json.key("store").begin_object();
    json.kv("directory", s.directory);
    json.kv("entries", s.entries);
    json.kv("bytes", s.bytes);
    json.kv("capacity_bytes", s.capacity_bytes);
    json.kv("hits", s.hits);
    json.kv("misses", s.misses);
    json.kv("corrupt", s.corrupt);
    json.kv("evictions", s.evictions);
    json.kv("writes", s.writes);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

// ---------------------------------------------------------------------------

/// One accepted socket. The fd is closed as soon as the reader has exited
/// AND no response is still owed to this peer (close_if_idle, both
/// transitions under write_mutex), so a worker finishing a solve for a
/// vanished client writes into a shut-down-but-still-allocated fd — an
/// EPIPE, never a reused descriptor.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  bool open = true;    ///< reader still running (guarded by write_mutex)
  bool broken = false; ///< a write failed; no further frames (write_mutex)
  int pending = 0;     ///< responses owed (guarded by write_mutex)
  std::thread reader;
  std::atomic<bool> done{false};  ///< reader exited (acceptor reaps)

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  bool send(std::string_view payload) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd < 0 || broken) return false;
    if (write_frame(fd, payload)) return true;
    // Peer hung up, or a pipelining client stopped reading long enough for
    // the socket's SO_SNDTIMEO to fire. Either way the frame stream may be
    // mid-frame, so the connection is unusable: drop it. The shutdown(2)
    // unblocks the reader, which retires the fd via the normal idle path,
    // and `broken` makes every later response to this peer fail fast
    // instead of waiting out the timeout again.
    broken = true;
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }

  void add_pending() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    ++pending;
  }

  void release_pending() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    --pending;
    close_if_idle_locked();
  }

  /// Reader exit: stop further writes from racing a peer that is gone.
  void finish_read() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    open = false;
    close_if_idle_locked();
  }

  /// Server shutdown: unblock the reader's read(2).
  void begin_close() {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  void close_if_idle_locked() {
    if (!open && pending == 0 && fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

/// One admissible unit of work: a leader request plus every coalesced
/// request attached to it. `attached` and `completed` are guarded by the
/// server's queue_mutex_ (attach, dequeue-triage, and completion snapshot
/// must be mutually atomic).
struct Server::Task {
  Request request;
  std::uint64_t key = 0;

  struct Attached {
    std::shared_ptr<Connection> conn;
    std::uint64_t id = 0;
    Clock::time_point arrival;
    Clock::time_point deadline;
    bool has_deadline = false;
  };
  std::vector<Attached> attached;
  bool completed = false;
};

namespace {
fault::Context listen_context() {
  fault::Context ctx;
  ctx.site = "service.listen";
  return ctx;
}
}  // namespace

Server::Server(Options options) : options_(std::move(options)) {}

Server::~Server() {
  if (started_) shutdown();
}

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw fault::Error(fault::Category::kResource, "socket() failed",
                       listen_context());
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw fault::Error(fault::Category::kResource,
                       "invalid listen address '" + options_.host + "'",
                       listen_context());
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw fault::Error(
        fault::Category::kResource,
        util::format("cannot bind %s:%d: %s", options_.host.c_str(),
                     options_.port, why.c_str()),
        listen_context());
  }
  if (::listen(listen_fd_, 1024) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw fault::Error(fault::Category::kResource,
                       "listen() failed: " + why,
                       listen_context());
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  std::size_t workers = options_.workers;
  if (workers == 0) workers = runtime::default_jobs();
  if (workers == 0) workers = 1;
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

int Server::port() const { return bound_port_; }

bool Server::stopped() const { return stopped_.load(); }

bool Server::shutdown_requested() const { return shutdown_requested_.load(); }

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this] {
    return shutdown_requested_.load() || stopped_.load();
  });
}

void Server::shutdown() {
  const std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (stopped_.load() || !started_) return;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    shutdown_requested_.store(true);
  }
  draining_.store(true);
  state_cv_.notify_all();

  // Unblock and retire the acceptor; no new connections from here on.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Drain: every admitted request must have its response written. New work
  // arriving on still-open connections is rejected (draining_), which also
  // flows through the pending counter, so the wait below is exact.
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return pending_responses_ == 0; });
  }

  // Workers: queue is empty once pending hit zero; let them exit.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Readers: unblock their read(2), join, release the sockets.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) conn->begin_close();
  for (const auto& conn : connections)
    if (conn->reader.joinable()) conn->reader.join();
  connections.clear();
  connections_gauge().set(0.0);

  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stopped_.store(true);
  }
  state_cv_.notify_all();
}

void Server::accept_loop() {
  while (true) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining_.load()) return;
      // Transient accept failure (EMFILE under fd exhaustion): keep
      // serving, but back off briefly — the error can persist for a while,
      // and a bare retry loop would spin this thread at 100% of a core.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    if (draining_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_timeout_ms > 0.0) {
      const auto usec = static_cast<long>(options_.send_timeout_ms * 1000.0);
      timeval timeout{};
      timeout.tv_sec = usec / 1000000;
      timeout.tv_usec = usec % 1000000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(conn_mutex_);
      // Reap connections whose reader already exited (join + drop; the
      // destructor closes any fd still held once workers released it).
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::shared_ptr<Connection>& c) {
                           if (!c->done.load()) return false;
                           if (c->reader.joinable()) c->reader.join();
                           return true;
                         }),
          connections_.end());
      connections_.push_back(conn);
      connections_gauge().set(static_cast<double>(connections_.size()));
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  while (!draining_.load()) {
    const FrameStatus status =
        read_frame(conn->fd, payload, options_.max_frame_bytes);
    if (status == FrameStatus::kOk) {
      if (!handle_payload(conn, payload)) break;
      continue;
    }
    if (status == FrameStatus::kTooLarge) {
      // The stream can no longer be frame-aligned (the oversized payload
      // was never consumed): answer structurally, then hang up.
      protocol_errors_total().add();
      conn->send(error_response(
          0, make_error(fault::Category::kInvalidModel,
                        util::format("frame exceeds %u-byte limit",
                                     options_.max_frame_bytes),
                        "service.frame")));
    }
    break;  // kEof / kTruncated / kIoError / kTooLarge: connection is done
  }
  conn->finish_read();
  conn->done.store(true);
}

bool Server::handle_payload(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  const obs::ScopedSpan span("service.request");
  std::string error;
  const auto parsed = wire::parse(payload, &error);
  if (!parsed) {
    protocol_errors_total().add();
    conn->send(error_response(
        0, make_error(fault::Category::kInvalidModel, error,
                      "service.request")));
    return true;  // frame boundary intact; connection stays usable
  }
  Request request;
  // Seed the daemon's analyzer configuration before parsing: the request's
  // `options` keys overlay it, so the solve (and the coalesce key, which
  // hashes the same merged options) honors exactly what the client asked
  // for, with absent keys inheriting the server's defaults.
  request.options = options_.analyzer;
  if (!parse_request(*parsed, &request, &error)) {
    protocol_errors_total().add();
    conn->send(error_response(
        request.id, make_error(fault::Category::kInvalidModel, error,
                               "service.request")));
    return true;
  }
  switch (request.method) {
    case Method::kPing:
      conn->send(ok_response(request.id, "{\"pong\":true}"));
      return true;
    case Method::kStats:
      conn->send(ok_response(request.id, stats_result_json(service_stats())));
      return true;
    case Method::kShutdown:
      conn->send(ok_response(request.id, "{\"shutting_down\":true}"));
      {
        // Store under state_mutex_ so wait() cannot check its predicate,
        // see the flag still false, and then sleep through this notify.
        const std::lock_guard<std::mutex> lock(state_mutex_);
        shutdown_requested_.store(true);
      }
      state_cv_.notify_all();
      return true;
    case Method::kAnalyze:
    case Method::kSweep:
    case Method::kSimulate:
    case Method::kMonitor:
      requests_total().add();
      admit(conn, std::move(request));
      return true;
  }
  return true;
}

void Server::admit(const std::shared_ptr<Connection>& conn, Request request) {
  // The response owed by this request is accounted before it can possibly
  // be answered, so the drain wait in shutdown() never undercounts.
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    ++pending_responses_;
  }
  conn->add_pending();

  const Clock::time_point arrival = Clock::now();
  double deadline_ms = request.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = options_.default_deadline_ms;
  const bool has_deadline = deadline_ms > 0.0;
  const Clock::time_point deadline =
      arrival + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));

  Task::Attached waiter{conn, request.id, arrival, deadline, has_deadline};

  if (draining_.load()) {
    rejected_total().add();
    respond(conn, error_response(request.id,
                                 make_error(fault::Category::kResource,
                                            "service is shutting down",
                                            "service.queue")));
    return;
  }

  const std::uint64_t key = coalesce_key(request);
  double retry_after_ms = 0.0;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (key != 0) {
      const auto it = in_flight_keys_.find(key);
      if (it != in_flight_keys_.end() && !it->second->completed) {
        it->second->attached.push_back(std::move(waiter));
        coalesced_total().add();
        return;
      }
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Backpressure hint: roughly how long until a slot frees up, scaled
      // by the backlog each worker already owns.
      const std::size_t workers = workers_.empty() ? 1 : workers_.size();
      retry_after_ms = std::min(
          1000.0, 10.0 * (double(queue_.size()) / double(workers) + 1.0));
    } else {
      auto task = std::make_shared<Task>();
      task->request = std::move(request);
      task->key = key;
      task->attached.push_back(std::move(waiter));
      if (key != 0) in_flight_keys_[key] = task;
      queue_.push_back(std::move(task));
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
      lock.unlock();
      queue_cv_.notify_one();
      return;
    }
  }
  rejected_total().add();
  respond(conn,
          error_response(
              waiter.id,
              make_error(fault::Category::kResource,
                         util::format("admission queue full (capacity %zu)",
                                      options_.queue_capacity),
                         "service.queue"),
              retry_after_ms));
}

void Server::worker_loop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || workers_stopping_; });
      if (queue_.empty()) return;  // workers_stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));

      // Dequeue triage: when every request attached so far is already past
      // its deadline, the solve is pure waste — skip it. Retiring the key
      // under the same lock means a late identical request starts a fresh
      // task instead of attaching to a dead one.
      const Clock::time_point now = Clock::now();
      bool all_expired = true;
      for (const Task::Attached& a : task->attached)
        if (!a.has_deadline || now < a.deadline) {
          all_expired = false;
          break;
        }
      if (all_expired) {
        if (task->key != 0) in_flight_keys_.erase(task->key);
        task->completed = true;
        std::vector<Task::Attached> attached;
        attached.swap(task->attached);
        lock.unlock();
        for (const Task::Attached& a : attached) {
          deadline_missed_total().add();
          respond(a.conn, error_response(a.id, core::Engine::deadline_error(
                                                   "service.queue", -1.0)));
        }
        continue;
      }
    }

    executed_total().add();
    bool ok = true;
    fault::ErrorInfo error;
    std::string result_json;
    {
      const obs::ScopedSpan span("service.execute");
      result_json = run_engine(task->request, &ok, &error);
    }

    // Completion: retire the coalescing key and freeze the waiter list.
    std::vector<Task::Attached> attached;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (task->key != 0) in_flight_keys_.erase(task->key);
      task->completed = true;
      attached.swap(task->attached);
    }
    const Clock::time_point done = Clock::now();
    for (const Task::Attached& a : attached) {
      if (a.has_deadline && done > a.deadline) {
        deadline_missed_total().add();
        const double overrun_s =
            std::chrono::duration<double>(done - a.deadline).count();
        respond(a.conn, error_response(a.id, core::Engine::deadline_error(
                                                 "service.deadline",
                                                 overrun_s)));
        continue;
      }
      request_seconds().observe(
          std::chrono::duration<double>(done - a.arrival).count());
      respond(a.conn, ok ? ok_response(a.id, result_json)
                         : error_response(a.id, error));
    }
  }
}

std::string Server::run_engine(const Request& request, bool* ok,
                               fault::ErrorInfo* error) {
  *ok = true;
  // The request's merged options drive this solve (never the daemon's
  // construction-time configuration alone). Per-request construction is
  // trivially cheap — Engine and its analyzer only hold configuration; the
  // staged caches are process-wide and keyed on (params, options).
  // Default engine options: never strict (failures must degrade to
  // envelopes), no store directory of its own — the process-wide store, if
  // `serve --store` opened one, is already global and the staged pipeline's
  // disk tier reads through it regardless.
  const core::Engine engine(request.options, core::Engine::Options{});
  switch (request.method) {
    case Method::kAnalyze: {
      const core::RunResult result = engine.analyze(request.params);
      if (!result.ok) {
        *ok = false;
        *error = result.error;
        return {};
      }
      return analyze_result_json(result.analysis);
    }
    case Method::kSweep: {
      const core::ParameterSetter setter =
          setter_for_name(request.sweep_param);
      // parse_request validated the name; a null setter here is a bug.
      if (!setter) {
        *ok = false;
        *error = make_error(fault::Category::kInternal,
                            "unmapped sweep parameter", "service.sweep");
        return {};
      }
      const std::vector<core::SweepPoint> points = engine.sweep(
          request.params, setter,
          core::linspace(request.sweep_from, request.sweep_to,
                         request.sweep_points));
      obs::JsonWriter json;
      json.begin_object();
      json.kv("param", request.sweep_param);
      std::uint64_t failed = 0;
      json.key("points").begin_array();
      for (const core::SweepPoint& point : points) {
        json.begin_object();
        json.kv("x", point.x);
        if (point.ok) {
          json.kv("value", point.expected_reliability);
        } else {
          ++failed;
          json.key("error").begin_object();
          json.kv("category", fault::to_string(point.error.category));
          json.kv("message", point.error.message);
          json.end_object();
        }
        json.end_object();
      }
      json.end_array();
      json.kv("failed", failed);
      json.end_object();
      return json.str();
    }
    case Method::kSimulate: {
      core::Engine::SimulateOptions sim;
      sim.horizon = request.sim_horizon;
      sim.replications = request.sim_replications;
      sim.seed = request.sim_seed;
      const core::RunResult result = engine.simulate(request.params, sim);
      if (!result.ok) {
        *ok = false;
        *error = result.error;
        return {};
      }
      obs::JsonWriter json;
      json.begin_object();
      json.kv("mean", result.estimate.mean);
      json.kv("ci_lo", result.estimate.ci.lo);
      json.kv("ci_hi", result.estimate.ci.hi);
      json.kv("horizon", sim.horizon);
      json.kv("replications",
              static_cast<std::uint64_t>(sim.replications));
      json.kv("seed", static_cast<std::uint64_t>(sim.seed));
      json.end_object();
      return json.str();
    }
    case Method::kMonitor: {
      monitor::SessionConfig config;
      config.params = request.params;
      config.schedule.kind =
          monitor::DriftSchedule::parse_kind(request.mon_schedule);
      config.schedule.multiplier = request.mon_multiplier;
      config.schedule.period = request.mon_period;
      config.schedule.segment = request.mon_segment;
      config.duration = request.mon_horizon;
      config.seed = request.mon_seed;
      config.policy = request.mon_policy;
      config.controller.update_every = request.mon_update_every;
      config.controller.interval_lo = request.mon_interval_lo;
      config.controller.interval_hi = request.mon_interval_hi;
      config.controller.grid_points = request.mon_grid_points;
      config.hysteresis.band = request.mon_band;
      config.hysteresis.min_interval = request.mon_interval_lo;
      config.hysteresis.max_interval = request.mon_interval_hi;
      const monitor::SessionResult session =
          monitor::run_monitor_session(engine, config);
      obs::JsonWriter json;
      json.begin_object();
      json.kv("schedule",
              monitor::DriftSchedule::kind_name(config.schedule.kind));
      json.kv("horizon", config.duration);
      json.kv("policy", config.policy);
      json.kv("seed", static_cast<std::uint64_t>(config.seed));
      json.kv("reliability", session.reliability);
      json.kv("updates", session.updates);
      json.kv("resolves", session.resolves);
      json.kv("retunes", session.retunes);
      json.kv("degraded_updates", session.degraded_updates);
      json.kv("detections", session.detections);
      json.kv("final_interval", session.final_interval);
      json.kv("mean_interval", session.mean_interval);
      json.key("records").begin_array();
      for (const monitor::ControlRecord& r : session.records) {
        json.begin_object();
        json.kv("time", r.time);
        json.kv("lambda_mean", r.lambda.mean);
        json.kv("pprime_mean", r.p_prime.mean);
        json.kv("target", r.target_interval);
        json.kv("applied", r.applied_interval);
        // Evidence-gated records (mttc_hat == 0, no solve yet) and degraded
        // records carry no fresh solve value, matching the CLI's empty cell.
        if (!r.degraded && r.mttc_hat > 0.0)
          json.kv("expected_reliability", r.expected_reliability);
        json.kv("retuned", r.retuned);
        if (r.degraded) json.kv("error", r.error);
        json.end_object();
      }
      json.end_array().end_object();
      return json.str();
    }
    default:
      *ok = false;
      *error = make_error(fault::Category::kInternal,
                          "non-work method reached the worker",
                          "service.worker");
      return {};
  }
}

void Server::respond(const std::shared_ptr<Connection>& conn,
                     std::string_view response) {
  if (conn->send(response)) responses_total().add();
  conn->release_pending();
  finish_one();
}

void Server::finish_one() {
  {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    --pending_responses_;
  }
  drain_cv_.notify_all();
}

}  // namespace nvp::service
