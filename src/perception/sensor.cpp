#include "src/perception/sensor.hpp"

#include <algorithm>

namespace nvp::perception {

const char* to_string(SensorKind kind) {
  switch (kind) {
    case SensorKind::kCamera:
      return "camera";
    case SensorKind::kLidar:
      return "lidar";
    case SensorKind::kRadar:
      return "radar";
  }
  return "?";
}

SensorModel::SensorModel(SensorKind kind, std::uint64_t seed)
    : kind_(kind), rng_(seed) {}

Observation SensorModel::observe(const Frame& frame) {
  Observation obs;
  obs.true_label = frame.label;
  double transfer = 1.0;
  double noise_floor = 0.0;
  switch (kind_) {
    case SensorKind::kCamera:
      transfer = 1.0;  // fully exposed to visual difficulty
      noise_floor = 0.02;
      break;
    case SensorKind::kLidar:
      transfer = 0.4;  // robust to lighting, sensitive to rain/occlusion
      noise_floor = 0.05;
      break;
    case SensorKind::kRadar:
      transfer = 0.2;  // nearly lighting-independent, coarser labels
      noise_floor = 0.08;
      break;
  }
  obs.effective_difficulty = std::min(1.0, frame.difficulty * transfer);
  obs.noise = std::min(1.0, noise_floor * rng_.uniform(0.5, 1.5));
  return obs;
}

}  // namespace nvp::perception
