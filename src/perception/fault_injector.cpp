#include "src/perception/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/contracts.hpp"

namespace nvp::perception {

FaultInjector::FaultInjector(const Config& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  NVP_EXPECTS(config.mean_time_to_compromise > 0.0);
  NVP_EXPECTS(config.mean_time_to_failure > 0.0);
  NVP_EXPECTS(config.mean_time_to_repair > 0.0);
}

void FaultInjector::add_attack_window(const AttackWindow& window) {
  NVP_EXPECTS(window.end > window.start);
  NVP_EXPECTS(window.rate_multiplier > 0.0);
  windows_.push_back(window);
}

double FaultInjector::attack_multiplier_at(double t) const {
  double m = 1.0;
  for (const AttackWindow& w : windows_)
    if (t >= w.start && t < w.end) m *= w.rate_multiplier;
  return m;
}

std::optional<double> FaultInjector::next_boundary_after(double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const AttackWindow& w : windows_) {
    if (w.start > t) best = std::min(best, w.start);
    if (w.end > t) best = std::min(best, w.end);
  }
  if (!std::isfinite(best)) return std::nullopt;
  return best;
}

std::optional<LifecycleEvent> FaultInjector::sample_next(double now,
                                                         int healthy,
                                                         int compromised,
                                                         int failed) {
  NVP_EXPECTS(healthy >= 0 && compromised >= 0 && failed >= 0);
  const bool infinite =
      config_.semantics == core::FiringSemantics::kInfiniteServer;
  auto scaled = [&](double base_rate, int count) {
    if (count == 0) return 0.0;
    return infinite ? base_rate * static_cast<double>(count) : base_rate;
  };
  const double rate_c =
      scaled(1.0 / config_.mean_time_to_compromise, healthy) *
      attack_multiplier_at(now);
  const double rate_f = scaled(1.0 / config_.mean_time_to_failure,
                               compromised);
  const double rate_r = scaled(1.0 / config_.mean_time_to_repair, failed);

  double best_time = std::numeric_limits<double>::infinity();
  LifecycleEventKind best_kind = LifecycleEventKind::kCompromise;
  const struct {
    double rate;
    LifecycleEventKind kind;
  } candidates[] = {
      {rate_c, LifecycleEventKind::kCompromise},
      {rate_f, LifecycleEventKind::kFail},
      {rate_r, LifecycleEventKind::kRepair},
  };
  for (const auto& c : candidates) {
    if (c.rate <= 0.0) continue;
    const double t = now + rng_.exponential(c.rate);
    if (t < best_time) {
      best_time = t;
      best_kind = c.kind;
    }
  }
  if (!std::isfinite(best_time)) return std::nullopt;
  return LifecycleEvent{best_time, best_kind};
}

}  // namespace nvp::perception
