#pragma once

#include <string>

#include "src/util/rng.hpp"

namespace nvp::perception {

/// Life-cycle state of one ML module version (§III of the paper).
enum class ModuleState {
  kHealthy,       ///< H: operating at nominal accuracy p
  kCompromised,   ///< C: degraded accuracy p' after a fault/attack
  kFailed,        ///< N: non-operational, awaiting repair
  kRejuvenating,  ///< being proactively recycled; silent meanwhile
};

const char* to_string(ModuleState state);

/// Per-frame answer of one module.
struct ModuleAnswer {
  bool responded = false;  ///< false when failed or rejuvenating
  int label = 0;           ///< class label voted for (valid if responded)
};

/// Simulated ML module version. The error behaviour matches the analytic
/// model exactly (so Monte-Carlo runs are comparable to Eq. 1):
///
///  * Healthy modules err through a common cause: per frame, one "adverse
///    input" event occurs with probability q = p / alpha, and each healthy
///    module independently succumbs to it with probability alpha. This
///    yields P(a specific set of h >= 1 healthy modules errs) =
///    p alpha^(h-1) (1-alpha)^(i-h), the Ege-style dependent-failure model
///    of assumption A.1. (Requires p <= alpha.)
///  * Compromised modules err independently with probability p' on every
///    frame (their output is essentially randomized, assumption on p').
///
/// Wrong labels: common-cause victims all output the same wrong label
/// (they misread the same adverse input); independent errors draw a
/// uniformly random wrong label. The bloc-counting voter ignores labels,
/// the plurality voter uses them.
class MlModuleSim {
 public:
  MlModuleSim(int id, std::string name, std::uint64_t seed);

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  ModuleState state() const { return state_; }
  void set_state(ModuleState state) { state_ = state; }

  bool operational() const {
    return state_ == ModuleState::kHealthy ||
           state_ == ModuleState::kCompromised;
  }

  /// Classifies one frame. `adverse_input` and `adverse_label` are the
  /// frame-wide common-cause draw shared by all modules (supplied by the
  /// system); `alpha`, `p_prime`, and `num_classes` parameterize the error
  /// model.
  ModuleAnswer classify(int true_label, bool adverse_input,
                        int adverse_label, double alpha, double p_prime,
                        int num_classes);

  /// Counters for diagnostics.
  std::uint64_t frames_answered() const { return answered_; }
  std::uint64_t frames_wrong() const { return wrong_; }

 private:
  int wrong_label(int true_label, int num_classes);

  int id_;
  std::string name_;
  ModuleState state_ = ModuleState::kHealthy;
  util::RandomStream rng_;
  std::uint64_t answered_ = 0;
  std::uint64_t wrong_ = 0;
};

}  // namespace nvp::perception
