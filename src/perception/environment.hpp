#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"

namespace nvp::perception {

/// Ground-truth perception request: at `time`, the environment contains an
/// object of class `label` (e.g. a traffic sign), possibly under degraded
/// observation conditions.
struct Frame {
  double time = 0.0;
  int label = 0;
  /// Observation difficulty in [0, 1]: 0 = ideal, 1 = hardest. Drives the
  /// "adverse input" channel of the common-cause error model.
  double difficulty = 0.0;
};

/// Synthetic driving environment producing a stream of ground-truth frames:
/// class labels follow a configurable skewed popularity distribution (a few
/// sign classes dominate, like GTSRB), and difficulty mixes a smooth
/// day/visibility drift with occasional hard scenes (glare, occlusion).
class Environment {
 public:
  struct Config {
    int num_classes = 43;
    double frame_interval = 1.0;  ///< seconds between perception requests
    double popularity_skew = 1.0;  ///< Zipf-like exponent; 0 = uniform
    double hard_scene_fraction = 0.1;
    std::uint64_t seed = 1234;
  };

  explicit Environment(const Config& config);

  /// Next frame in the stream (time advances by frame_interval).
  Frame next();

  /// Number of frames generated so far.
  std::uint64_t frames_generated() const { return count_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  util::RandomStream rng_;
  std::vector<double> class_weights_;
  double clock_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace nvp::perception
