#include "src/perception/adaptive.hpp"

#include <algorithm>

namespace nvp::perception {

bool AdaptiveIntervalController::record_verdict(bool suspicious) {
  ++window_count_;
  if (suspicious) ++window_suspicious_;
  if (window_count_ < config_.window_frames) return false;

  const double rate = static_cast<double>(window_suspicious_) /
                      static_cast<double>(window_count_);
  window_count_ = 0;
  window_suspicious_ = 0;

  const double before = interval_;
  if (rate >= config_.suspicion_threshold) {
    interval_ = std::max(config_.min_interval, interval_ / 2.0);
    if (interval_ != before) ++tightenings_;
  } else {
    interval_ = std::min(config_.max_interval,
                         interval_ + config_.relax_step);
    if (interval_ != before) ++relaxations_;
  }
  return interval_ != before;
}

}  // namespace nvp::perception
