#include "src/perception/environment.hpp"

#include <cmath>

#include "src/util/contracts.hpp"

namespace nvp::perception {

Environment::Environment(const Config& config)
    : config_(config), rng_(config.seed) {
  NVP_EXPECTS(config.num_classes >= 2);
  NVP_EXPECTS(config.frame_interval > 0.0);
  NVP_EXPECTS(config.popularity_skew >= 0.0);
  NVP_EXPECTS(config.hard_scene_fraction >= 0.0 &&
              config.hard_scene_fraction <= 1.0);
  class_weights_.resize(static_cast<std::size_t>(config.num_classes));
  for (int c = 0; c < config.num_classes; ++c)
    class_weights_[static_cast<std::size_t>(c)] =
        1.0 / std::pow(static_cast<double>(c + 1), config.popularity_skew);
}

Frame Environment::next() {
  Frame frame;
  clock_ += config_.frame_interval;
  frame.time = clock_;
  frame.label = static_cast<int>(rng_.discrete(class_weights_));
  // Smooth visibility drift (slow sinusoid) plus occasional hard scenes.
  const double drift =
      0.15 * (1.0 + std::sin(clock_ / 3600.0 * 2.0 * 3.14159265358979)) /
      2.0;
  const bool hard = rng_.bernoulli(config_.hard_scene_fraction);
  frame.difficulty =
      std::min(1.0, drift + (hard ? rng_.uniform(0.5, 1.0) : 0.0));
  ++count_;
  return frame;
}

}  // namespace nvp::perception
