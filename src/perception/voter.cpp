#include "src/perception/voter.hpp"

#include <map>

#include "src/util/contracts.hpp"

namespace nvp::perception {

BlocThresholdVoter::BlocThresholdVoter(core::VotingScheme scheme)
    : scheme_(scheme) {}

VoteResult BlocThresholdVoter::vote(const std::vector<ModuleAnswer>& answers,
                                    int true_label) const {
  NVP_EXPECTS(static_cast<int>(answers.size()) == scheme_.n());
  VoteResult result;
  for (const ModuleAnswer& a : answers) {
    if (!a.responded)
      ++result.silent;
    else if (a.label == true_label)
      ++result.correct_votes;
    else
      ++result.wrong_votes;
  }
  result.verdict = scheme_.decide(result.correct_votes, result.wrong_votes,
                                  result.silent);
  if (result.verdict == core::Verdict::kCorrect)
    result.decided_label = true_label;
  return result;
}

PluralityThresholdVoter::PluralityThresholdVoter(core::VotingScheme scheme)
    : scheme_(scheme) {}

VoteResult PluralityThresholdVoter::vote(
    const std::vector<ModuleAnswer>& answers, int true_label) const {
  NVP_EXPECTS(static_cast<int>(answers.size()) == scheme_.n());
  VoteResult result;
  std::map<int, int> tally;
  for (const ModuleAnswer& a : answers) {
    if (!a.responded) {
      ++result.silent;
      continue;
    }
    ++tally[a.label];
    if (a.label == true_label)
      ++result.correct_votes;
    else
      ++result.wrong_votes;
  }
  if (result.silent > scheme_.max_silent()) {
    result.verdict = core::Verdict::kUnavailable;
    return result;
  }
  // A decision requires `threshold` *identical* labels.
  int best_label = -1;
  int best_count = 0;
  for (const auto& [label, count] : tally) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  if (best_count >= scheme_.threshold()) {
    result.decided_label = best_label;
    result.verdict = best_label == true_label ? core::Verdict::kCorrect
                                              : core::Verdict::kError;
  } else {
    result.verdict = core::Verdict::kInconclusive;
  }
  return result;
}

WeightedBlocVoter::WeightedBlocVoter(core::VotingScheme scheme,
                                     std::vector<int> module_group)
    : scheme_(std::move(scheme)), module_group_(std::move(module_group)) {
  NVP_EXPECTS_MSG(scheme_.is_weighted(),
                  "WeightedBlocVoter needs a weighted scheme");
  for (int g : module_group_)
    NVP_EXPECTS(g >= 0 &&
                g < static_cast<int>(scheme_.weights().size()));
}

VoteResult WeightedBlocVoter::vote(const std::vector<ModuleAnswer>& answers,
                                   int true_label) const {
  NVP_EXPECTS(answers.size() == module_group_.size());
  std::vector<core::VotingScheme::GroupTally> tallies(
      scheme_.weights().size());
  VoteResult result;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    auto& tally = tallies[static_cast<std::size_t>(module_group_[i])];
    const ModuleAnswer& a = answers[i];
    if (!a.responded) {
      ++tally.silent;
      ++result.silent;
    } else if (a.label == true_label) {
      ++tally.correct;
      ++result.correct_votes;
    } else {
      ++tally.wrong;
      ++result.wrong_votes;
    }
  }
  result.verdict = scheme_.decide(tallies);
  if (result.verdict == core::Verdict::kCorrect)
    result.decided_label = true_label;
  return result;
}

}  // namespace nvp::perception
