#include "src/perception/system.hpp"

#include <algorithm>
#include <limits>

#include "src/util/contracts.hpp"
#include "src/util/string_util.hpp"

namespace nvp::perception {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();

core::VotingScheme scheme_for(const core::SystemParameters& p) {
  return p.rejuvenation
             ? core::VotingScheme::bft_rejuvenating(p.n_versions,
                                                    p.max_faulty,
                                                    p.max_rejuvenating)
             : core::VotingScheme::bft(p.n_versions, p.max_faulty);
}

SensorKind sensor_cycle(int i) {
  switch (i % 3) {
    case 0:
      return SensorKind::kCamera;
    case 1:
      return SensorKind::kLidar;
    default:
      return SensorKind::kRadar;
  }
}
}  // namespace

NVersionPerceptionSystem::NVersionPerceptionSystem(const Config& config)
    : config_(config),
      rng_(config.seed),
      injector_(
          FaultInjector::Config{config.params.mean_time_to_compromise,
                                config.params.mean_time_to_failure,
                                config.params.mean_time_to_repair,
                                config.params.semantics},
          config.seed ^ 0xFA17ULL),
      rejuvenator_(
          TimedRejuvenator::Config{config.params.rejuvenation,
                                   config.params.rejuvenation_interval,
                                   config.params.rejuvenation_duration,
                                   config.params.max_rejuvenating},
          config.seed ^ 0x4E30ULL),
      environment_(Environment::Config{config.num_classes,
                                       config.frame_interval, 1.0, 0.1,
                                       config.seed ^ 0xE417ULL}) {
  config.params.validate();
  NVP_EXPECTS(config.frame_interval > 0.0);
  NVP_EXPECTS(config.num_classes >= 2);
  // The common-cause generative model needs an adverse-input probability
  // q = p / alpha <= 1.
  NVP_EXPECTS_MSG(config.params.alpha <= 0.0
                      ? config.params.p == 0.0
                      : config.params.p <= config.params.alpha + 1e-12,
                  "Monte-Carlo common-cause sampling requires p <= alpha");

  const core::VotingScheme scheme = scheme_for(config.params);
  if (config.plurality_voter)
    voter_ = std::make_unique<PluralityThresholdVoter>(scheme);
  else
    voter_ = std::make_unique<BlocThresholdVoter>(scheme);

  if (config.adaptive_rejuvenation) {
    NVP_EXPECTS_MSG(config.params.rejuvenation,
                    "adaptive rejuvenation needs the rejuvenating model");
    AdaptiveIntervalController::Config adaptive = config.adaptive;
    adaptive.initial_interval = config.params.rejuvenation_interval;
    adaptive.max_interval =
        std::max(adaptive.max_interval, adaptive.initial_interval);
    adaptive.min_interval =
        std::min(adaptive.min_interval, adaptive.initial_interval);
    adaptive_.emplace(adaptive);
  }

  util::SeedSequence seeds(config.seed ^ 0x5EED5EEDULL);
  for (int i = 0; i < config.params.n_versions; ++i) {
    modules_.emplace_back(i, util::format("mlm-%d", i), seeds.next());
    sensors_.emplace_back(sensor_cycle(i), seeds.next());
  }
  next_frame_ = config.frame_interval;
}

void NVersionPerceptionSystem::add_attack_window(
    const FaultInjector::AttackWindow& window) {
  injector_.add_attack_window(window);
}

int NVersionPerceptionSystem::count(ModuleState state) const {
  int n = 0;
  for (const auto& m : modules_)
    if (m.state() == state) ++n;
  return n;
}

std::vector<int> NVersionPerceptionSystem::indices_in(
    ModuleState state) const {
  std::vector<int> out;
  for (const auto& m : modules_)
    if (m.state() == state) out.push_back(m.id());
  return out;
}

void NVersionPerceptionSystem::start_rejuvenations(double now,
                                                   CampaignResult& result) {
  (void)result;
  const int failed = count(ModuleState::kFailed);
  const int rejuvenating = count(ModuleState::kRejuvenating);
  auto healthy = indices_in(ModuleState::kHealthy);
  auto compromised = indices_in(ModuleState::kCompromised);
  const int operational =
      static_cast<int>(healthy.size() + compromised.size());
  const int starts =
      rejuvenator_.claim_starts(failed, rejuvenating, operational);
  if (starts == 0) return;
  for (int s = 0; s < starts; ++s) {
    // Weights w1/w2: pick uniformly among operational modules (the system
    // cannot tell healthy from compromised).
    std::vector<int> pool = healthy;
    pool.insert(pool.end(), compromised.begin(), compromised.end());
    NVP_ASSERT(!pool.empty());
    const int victim = pool[rng_.uniform_index(pool.size())];
    modules_[static_cast<std::size_t>(victim)].set_state(
        ModuleState::kRejuvenating);
    healthy = indices_in(ModuleState::kHealthy);
    compromised = indices_in(ModuleState::kCompromised);
  }
  rejuvenator_.schedule_completion(now, count(ModuleState::kRejuvenating));
}

void NVersionPerceptionSystem::process_frame(const Frame& frame,
                                             CampaignResult& result) {
  // Frame-wide common-cause draw: an adverse input arrives with probability
  // q = p / alpha; all healthy modules are exposed to the same one, each
  // succumbing independently with probability alpha (see MlModuleSim).
  const double alpha = config_.params.alpha;
  const double q = alpha > 0.0 ? config_.params.p / alpha : 0.0;
  const bool adverse = rng_.bernoulli(std::min(1.0, q));
  int adverse_label = frame.label;
  if (adverse) {
    const auto offset =
        1 + static_cast<int>(rng_.uniform_index(
                static_cast<std::uint64_t>(config_.num_classes - 1)));
    adverse_label = (frame.label + offset) % config_.num_classes;
  }

  std::vector<ModuleAnswer> answers;
  answers.reserve(modules_.size());
  for (auto& module : modules_) {
    // Sensor observation currently informs diversity bookkeeping only; the
    // error channel is fully parameterized by (p, p', alpha) to stay
    // comparable with the analytic model.
    if (module.operational())
      sensors_[static_cast<std::size_t>(module.id())].observe(frame);
    answers.push_back(module.classify(frame.label, adverse, adverse_label,
                                      alpha, config_.params.p_prime,
                                      config_.num_classes));
  }
  const VoteResult vote = voter_->vote(answers, frame.label);
  ++result.frames;
  switch (vote.verdict) {
    case core::Verdict::kCorrect:
      ++result.correct;
      break;
    case core::Verdict::kError:
      ++result.errors;
      break;
    case core::Verdict::kInconclusive:
      ++result.inconclusive;
      break;
    case core::Verdict::kUnavailable:
      ++result.unavailable;
      break;
  }

  // Threat-adaptive rejuvenation: feed the controller and retune the
  // clock when it reacts. Suspicious = the voter could not certify a
  // correct output.
  if (adaptive_) {
    const bool suspicious = vote.verdict != core::Verdict::kCorrect;
    if (adaptive_->record_verdict(suspicious))
      rejuvenator_.set_interval(adaptive_->current_interval(), frame.time);
  }

  // Error-burst bookkeeping (safety metric).
  if (vote.verdict == core::Verdict::kError) {
    ++current_error_burst_;
    if (current_error_burst_ > result.longest_error_burst)
      result.longest_error_burst = current_error_burst_;
    if (current_error_burst_ == 3) ++result.error_bursts_at_least_3;
  } else {
    current_error_burst_ = 0;
  }
}

CampaignResult NVersionPerceptionSystem::run(double duration) {
  NVP_EXPECTS(duration > 0.0);
  CampaignResult result;
  const double end_time = now_ + duration;

  while (now_ < end_time) {
    // Candidate events: next life-cycle event (exponential, resampled each
    // iteration — memoryless), rejuvenation clock tick, batch completion,
    // attack-window boundary, next frame.
    const int healthy = count(ModuleState::kHealthy);
    const int compromised = count(ModuleState::kCompromised);
    const int failed = count(ModuleState::kFailed);

    double lifecycle_time = kNever;
    LifecycleEventKind lifecycle_kind = LifecycleEventKind::kCompromise;
    if (const auto ev =
            injector_.sample_next(now_, healthy, compromised, failed)) {
      lifecycle_time = ev->time;
      lifecycle_kind = ev->kind;
    }
    const auto boundary = injector_.next_boundary_after(now_);
    const double boundary_time = boundary.value_or(kNever);
    const double tick_time = rejuvenator_.next_clock_tick();
    const double completion_time = rejuvenator_.next_completion();
    const double frame_time = next_frame_;

    const double next_time =
        std::min({lifecycle_time, boundary_time, tick_time, completion_time,
                  frame_time, end_time});

    // Accumulate state sojourn for the (i, j, k) distribution.
    const int down = failed + count(ModuleState::kRejuvenating);
    result.state_time_fraction[{healthy, compromised, down}] +=
        next_time - now_;
    now_ = next_time;
    if (now_ >= end_time) break;

    if (next_time == lifecycle_time) {
      switch (lifecycle_kind) {
        case LifecycleEventKind::kCompromise: {
          const auto pool = indices_in(ModuleState::kHealthy);
          NVP_ASSERT(!pool.empty());
          modules_[static_cast<std::size_t>(
                       pool[rng_.uniform_index(pool.size())])]
              .set_state(ModuleState::kCompromised);
          ++result.compromises;
          break;
        }
        case LifecycleEventKind::kFail: {
          const auto pool = indices_in(ModuleState::kCompromised);
          NVP_ASSERT(!pool.empty());
          modules_[static_cast<std::size_t>(
                       pool[rng_.uniform_index(pool.size())])]
              .set_state(ModuleState::kFailed);
          ++result.failures;
          break;
        }
        case LifecycleEventKind::kRepair: {
          const auto pool = indices_in(ModuleState::kFailed);
          NVP_ASSERT(!pool.empty());
          modules_[static_cast<std::size_t>(
                       pool[rng_.uniform_index(pool.size())])]
              .set_state(ModuleState::kHealthy);
          ++result.repairs;
          // A repair may unblock guard g2 for pending credits.
          start_rejuvenations(now_, result);
          break;
        }
      }
    } else if (next_time == tick_time) {
      rejuvenator_.on_clock_tick(count(ModuleState::kRejuvenating));
      start_rejuvenations(now_, result);
    } else if (next_time == completion_time) {
      rejuvenator_.on_completion();
      for (auto& m : modules_)
        if (m.state() == ModuleState::kRejuvenating)
          m.set_state(ModuleState::kHealthy);
      // Completion may let pending credits start a late batch.
      start_rejuvenations(now_, result);
    } else if (next_time == frame_time) {
      process_frame(environment_.next(), result);
      next_frame_ += config_.frame_interval;
    }
    // Attack-window boundaries need no action: the loop resamples rates.
  }

  result.rejuvenation_batches = rejuvenator_.batches_started();
  // Normalize sojourn masses into fractions.
  double total = 0.0;
  for (const auto& [_, t] : result.state_time_fraction) total += t;
  if (total > 0.0)
    for (auto& [_, t] : result.state_time_fraction) t /= total;
  return result;
}

}  // namespace nvp::perception
