#include "src/perception/system.hpp"

#include <algorithm>
#include <limits>

#include "src/util/contracts.hpp"
#include "src/util/string_util.hpp"

namespace nvp::perception {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();

core::VotingScheme scheme_for(const core::SystemParameters& p) {
  return p.rejuvenation
             ? core::VotingScheme::bft_rejuvenating(p.n_versions,
                                                    p.max_faulty,
                                                    p.max_rejuvenating)
             : core::VotingScheme::bft(p.n_versions, p.max_faulty);
}

SensorKind sensor_cycle(int i) {
  switch (i % 3) {
    case 0:
      return SensorKind::kCamera;
    case 1:
      return SensorKind::kLidar;
    default:
      return SensorKind::kRadar;
  }
}

NVersionPerceptionSystem::Config canonical_config(
    NVersionPerceptionSystem::Config config) {
  // A single perfect-repair group folds to the scalar configuration, so
  // such campaigns run the homogeneous code paths (and RNG sequences)
  // unchanged.
  config.params = config.params.canonicalized();
  return config;
}
}  // namespace

NVersionPerceptionSystem::NVersionPerceptionSystem(const Config& config)
    : config_(canonical_config(config)),
      rng_(config.seed),
      injector_(
          FaultInjector::Config{config.params.mean_time_to_compromise,
                                config.params.mean_time_to_failure,
                                config.params.mean_time_to_repair,
                                config.params.semantics},
          config.seed ^ 0xFA17ULL),
      rejuvenator_(
          TimedRejuvenator::Config{config.params.rejuvenation,
                                   config.params.rejuvenation_interval,
                                   config.params.rejuvenation_duration,
                                   config.params.max_rejuvenating},
          config.seed ^ 0x4E30ULL),
      environment_(Environment::Config{config.num_classes,
                                       config.frame_interval, 1.0, 0.1,
                                       config.seed ^ 0xE417ULL}) {
  config_.params.validate();
  NVP_EXPECTS(config.frame_interval > 0.0);
  NVP_EXPECTS(config.num_classes >= 2);

  groups_ = config_.params.groups;
  if (groups_.empty()) {
    // The common-cause generative model needs an adverse-input probability
    // q = p / alpha <= 1.
    NVP_EXPECTS_MSG(config_.params.alpha <= 0.0
                        ? config_.params.p == 0.0
                        : config_.params.p <= config_.params.alpha + 1e-12,
                    "Monte-Carlo common-cause sampling requires p <= alpha");
    const core::VotingScheme scheme = scheme_for(config_.params);
    if (config.plurality_voter)
      voter_ = std::make_unique<PluralityThresholdVoter>(scheme);
    else
      voter_ = std::make_unique<BlocThresholdVoter>(scheme);
  } else {
    NVP_EXPECTS_MSG(!config.plurality_voter,
                    "the plurality voter is homogeneous-only; module-group "
                    "campaigns vote by weighted bloc");
    std::vector<double> weights;
    for (const core::ModuleGroup& g : groups_) {
      NVP_EXPECTS_MSG(config_.params.alpha <= 0.0
                          ? g.p == 0.0
                          : g.p <= config_.params.alpha + 1e-12,
                      "Monte-Carlo common-cause sampling requires p <= "
                      "alpha in every group");
      weights.push_back(g.weight);
      for (int m = 0; m < g.count; ++m)
        module_group_.push_back(
            static_cast<int>(weights.size()) - 1);
    }
    degraded_.assign(
        static_cast<std::size_t>(config_.params.n_versions), 0);
    voter_ = std::make_unique<WeightedBlocVoter>(
        core::VotingScheme::weighted(weights,
                                     config_.params.weighted_quota()),
        module_group_);
  }

  if (config.adaptive_rejuvenation) {
    NVP_EXPECTS_MSG(config.params.rejuvenation,
                    "adaptive rejuvenation needs the rejuvenating model");
    AdaptiveIntervalController::Config adaptive = config.adaptive;
    adaptive.initial_interval = config.params.rejuvenation_interval;
    adaptive.max_interval =
        std::max(adaptive.max_interval, adaptive.initial_interval);
    adaptive.min_interval =
        std::min(adaptive.min_interval, adaptive.initial_interval);
    adaptive_.emplace(adaptive);
  }

  util::SeedSequence seeds(config.seed ^ 0x5EED5EEDULL);
  for (int i = 0; i < config.params.n_versions; ++i) {
    modules_.emplace_back(i, util::format("mlm-%d", i), seeds.next());
    sensors_.emplace_back(sensor_cycle(i), seeds.next());
  }
  next_frame_ = config.frame_interval;
}

void NVersionPerceptionSystem::add_attack_window(
    const FaultInjector::AttackWindow& window) {
  NVP_EXPECTS_MSG(groups_.empty(),
                  "attack windows are not supported for module-group "
                  "campaigns (per-group life-cycles sample directly)");
  injector_.add_attack_window(window);
}

int NVersionPerceptionSystem::count(ModuleState state) const {
  int n = 0;
  for (const auto& m : modules_)
    if (m.state() == state) ++n;
  return n;
}

std::vector<int> NVersionPerceptionSystem::indices_in(
    ModuleState state) const {
  std::vector<int> out;
  for (const auto& m : modules_)
    if (m.state() == state) out.push_back(m.id());
  return out;
}

std::vector<int> NVersionPerceptionSystem::group_indices_in(
    int group, ModuleState state, bool degraded) const {
  std::vector<int> out;
  for (const auto& m : modules_) {
    if (m.state() != state) continue;
    if (module_group_[static_cast<std::size_t>(m.id())] != group) continue;
    if (static_cast<bool>(degraded_[static_cast<std::size_t>(m.id())]) !=
        degraded)
      continue;
    out.push_back(m.id());
  }
  return out;
}

std::optional<NVersionPerceptionSystem::GroupLifecycleEvent>
NVersionPerceptionSystem::sample_group_lifecycle(double now) {
  // Per-group competing exponentials mirroring the module-group DSPN's
  // transitions (Tc_g, Tcd_g, Tf_g, Tr_g, Trd_g): under single-server
  // semantics each enabled transition races at its constant rate; the
  // infinite-server ablation scales rates by the pool size. Memoryless, so
  // resampling at every event is exact.
  const bool infinite =
      config_.params.semantics == core::FiringSemantics::kInfiniteServer;
  std::optional<GroupLifecycleEvent> best;
  const auto consider = [&](int pool, double rate, int group,
                            LifecycleEventKind kind, bool from_degraded,
                            bool repair_degrades) {
    if (pool <= 0 || rate <= 0.0) return;
    const double effective =
        infinite ? rate * static_cast<double>(pool) : rate;
    const double t = now + rng_.exponential(effective);
    if (!best || t < best->time)
      best = GroupLifecycleEvent{t, kind, group, from_degraded,
                                 repair_degrades};
  };
  for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
    const core::ModuleGroup& spec = groups_[static_cast<std::size_t>(g)];
    const double lambda_c = 1.0 / spec.mean_time_to_compromise;
    const double lambda = 1.0 / spec.mean_time_to_failure;
    const double mu = 1.0 / spec.mean_time_to_repair;
    const double q = spec.repair_degradation;
    // The degraded flag is only ever set on kHealthy modules (it is
    // cleared on compromise, rejuvenation, and perfect repair).
    const int healthy =
        static_cast<int>(group_indices_in(g, ModuleState::kHealthy,
                                          /*degraded=*/false)
                             .size());
    const int degraded =
        static_cast<int>(group_indices_in(g, ModuleState::kHealthy,
                                          /*degraded=*/true)
                             .size());
    const int compromised =
        static_cast<int>(group_indices_in(g, ModuleState::kCompromised,
                                          /*degraded=*/false)
                             .size());
    const int failed =
        static_cast<int>(group_indices_in(g, ModuleState::kFailed,
                                          /*degraded=*/false)
                             .size());
    consider(healthy, lambda_c, g, LifecycleEventKind::kCompromise, false,
             false);
    if (q > 0.0) {
      consider(degraded, lambda_c / (1.0 - q), g,
               LifecycleEventKind::kCompromise, true, false);
      consider(failed, (1.0 - q) * mu, g, LifecycleEventKind::kRepair,
               false, false);
      consider(failed, q * mu, g, LifecycleEventKind::kRepair, false, true);
    } else {
      consider(failed, mu, g, LifecycleEventKind::kRepair, false, false);
    }
    consider(compromised, lambda, g, LifecycleEventKind::kFail, false,
             false);
  }
  return best;
}

void NVersionPerceptionSystem::start_rejuvenations(double now,
                                                   CampaignResult& result) {
  (void)result;
  const int failed = count(ModuleState::kFailed);
  const int rejuvenating = count(ModuleState::kRejuvenating);
  auto healthy = indices_in(ModuleState::kHealthy);
  auto compromised = indices_in(ModuleState::kCompromised);
  const int operational =
      static_cast<int>(healthy.size() + compromised.size());
  const int starts =
      rejuvenator_.claim_starts(failed, rejuvenating, operational);
  if (starts == 0) return;
  for (int s = 0; s < starts; ++s) {
    // Weights w1/w2: pick uniformly among operational modules (the system
    // cannot tell healthy from compromised).
    std::vector<int> pool = healthy;
    pool.insert(pool.end(), compromised.begin(), compromised.end());
    NVP_ASSERT(!pool.empty());
    const int victim = pool[rng_.uniform_index(pool.size())];
    modules_[static_cast<std::size_t>(victim)].set_state(
        ModuleState::kRejuvenating);
    healthy = indices_in(ModuleState::kHealthy);
    compromised = indices_in(ModuleState::kCompromised);
  }
  rejuvenator_.schedule_completion(now, count(ModuleState::kRejuvenating));
}

void NVersionPerceptionSystem::process_frame(const Frame& frame,
                                             CampaignResult& result) {
  const double alpha = config_.params.alpha;
  std::vector<ModuleAnswer> answers;
  answers.reserve(modules_.size());
  if (groups_.empty()) {
    // Frame-wide common-cause draw: an adverse input arrives with
    // probability q = p / alpha; all healthy modules are exposed to the
    // same one, each succumbing independently with probability alpha (see
    // MlModuleSim).
    const double q = alpha > 0.0 ? config_.params.p / alpha : 0.0;
    const bool adverse = rng_.bernoulli(std::min(1.0, q));
    int adverse_label = frame.label;
    if (adverse) {
      const auto offset =
          1 + static_cast<int>(rng_.uniform_index(
                  static_cast<std::uint64_t>(config_.num_classes - 1)));
      adverse_label = (frame.label + offset) % config_.num_classes;
    }
    for (auto& module : modules_) {
      // Sensor observation currently informs diversity bookkeeping only;
      // the error channel is fully parameterized by (p, p', alpha) to stay
      // comparable with the analytic model.
      if (module.operational())
        sensors_[static_cast<std::size_t>(module.id())].observe(frame);
      answers.push_back(module.classify(frame.label, adverse, adverse_label,
                                        alpha, config_.params.p_prime,
                                        config_.num_classes));
    }
  } else {
    // Per-group common-cause draws: each group is one diversity pool with
    // its own adverse-input probability q_g = p_g / alpha; groups err
    // independently (matching GroupReliabilityModel), while within a group
    // the adverse input is shared exactly as in the homogeneous model.
    // Degraded modules vote like healthy ones (same p_g).
    std::vector<char> adverse(groups_.size(), 0);
    std::vector<int> adverse_label(groups_.size(), frame.label);
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const double q = alpha > 0.0 ? groups_[g].p / alpha : 0.0;
      if (!rng_.bernoulli(std::min(1.0, q))) continue;
      adverse[g] = 1;
      const auto offset =
          1 + static_cast<int>(rng_.uniform_index(
                  static_cast<std::uint64_t>(config_.num_classes - 1)));
      adverse_label[g] = (frame.label + offset) % config_.num_classes;
    }
    for (auto& module : modules_) {
      const auto g = static_cast<std::size_t>(
          module_group_[static_cast<std::size_t>(module.id())]);
      if (module.operational())
        sensors_[static_cast<std::size_t>(module.id())].observe(frame);
      answers.push_back(module.classify(
          frame.label, adverse[g] != 0, adverse_label[g], alpha,
          groups_[g].p_prime, config_.num_classes));
    }
  }
  const VoteResult vote = voter_->vote(answers, frame.label);
  if (frame_observer_) frame_observer_(frame, answers, vote);
  ++result.frames;
  switch (vote.verdict) {
    case core::Verdict::kCorrect:
      ++result.correct;
      break;
    case core::Verdict::kError:
      ++result.errors;
      break;
    case core::Verdict::kInconclusive:
      ++result.inconclusive;
      break;
    case core::Verdict::kUnavailable:
      ++result.unavailable;
      break;
  }

  // Threat-adaptive rejuvenation: feed the controller and retune the
  // clock when it reacts. Suspicious = the voter could not certify a
  // correct output.
  if (adaptive_) {
    const bool suspicious = vote.verdict != core::Verdict::kCorrect;
    if (adaptive_->record_verdict(suspicious))
      rejuvenator_.set_interval(adaptive_->current_interval(), frame.time);
  }

  // Error-burst bookkeeping (safety metric).
  if (vote.verdict == core::Verdict::kError) {
    ++current_error_burst_;
    if (current_error_burst_ > result.longest_error_burst)
      result.longest_error_burst = current_error_burst_;
    if (current_error_burst_ == 3) ++result.error_bursts_at_least_3;
  } else {
    current_error_burst_ = 0;
  }
}

CampaignResult NVersionPerceptionSystem::run(double duration) {
  NVP_EXPECTS(duration > 0.0);
  CampaignResult result;
  const double end_time = now_ + duration;

  while (now_ < end_time) {
    // Candidate events: next life-cycle event (exponential, resampled each
    // iteration — memoryless), rejuvenation clock tick, batch completion,
    // attack-window boundary, next frame.
    const int healthy = count(ModuleState::kHealthy);
    const int compromised = count(ModuleState::kCompromised);
    const int failed = count(ModuleState::kFailed);

    double lifecycle_time = kNever;
    LifecycleEventKind lifecycle_kind = LifecycleEventKind::kCompromise;
    std::optional<GroupLifecycleEvent> group_event;
    if (groups_.empty()) {
      if (const auto ev =
              injector_.sample_next(now_, healthy, compromised, failed)) {
        lifecycle_time = ev->time;
        lifecycle_kind = ev->kind;
      }
    } else if ((group_event = sample_group_lifecycle(now_))) {
      lifecycle_time = group_event->time;
      lifecycle_kind = group_event->kind;
    }
    const auto boundary = injector_.next_boundary_after(now_);
    const double boundary_time = boundary.value_or(kNever);
    const double tick_time = rejuvenator_.next_clock_tick();
    const double completion_time = rejuvenator_.next_completion();
    const double frame_time = next_frame_;

    const double next_time =
        std::min({lifecycle_time, boundary_time, tick_time, completion_time,
                  frame_time, end_time});

    // Accumulate state sojourn for the (i, j, k) distribution.
    const int down = failed + count(ModuleState::kRejuvenating);
    result.state_time_fraction[{healthy, compromised, down}] +=
        next_time - now_;
    now_ = next_time;
    if (now_ >= end_time) break;

    if (next_time == lifecycle_time) {
      switch (lifecycle_kind) {
        case LifecycleEventKind::kCompromise: {
          const auto pool =
              group_event
                  ? group_indices_in(group_event->group,
                                     ModuleState::kHealthy,
                                     group_event->from_degraded)
                  : indices_in(ModuleState::kHealthy);
          NVP_ASSERT(!pool.empty());
          const int victim =
              pool[rng_.uniform_index(pool.size())];
          modules_[static_cast<std::size_t>(victim)].set_state(
              ModuleState::kCompromised);
          if (!degraded_.empty())
            degraded_[static_cast<std::size_t>(victim)] = 0;
          ++result.compromises;
          break;
        }
        case LifecycleEventKind::kFail: {
          const auto pool =
              group_event ? group_indices_in(group_event->group,
                                             ModuleState::kCompromised,
                                             /*degraded=*/false)
                          : indices_in(ModuleState::kCompromised);
          NVP_ASSERT(!pool.empty());
          modules_[static_cast<std::size_t>(
                       pool[rng_.uniform_index(pool.size())])]
              .set_state(ModuleState::kFailed);
          ++result.failures;
          break;
        }
        case LifecycleEventKind::kRepair: {
          const auto pool =
              group_event ? group_indices_in(group_event->group,
                                             ModuleState::kFailed,
                                             /*degraded=*/false)
                          : indices_in(ModuleState::kFailed);
          NVP_ASSERT(!pool.empty());
          const int victim = pool[rng_.uniform_index(pool.size())];
          modules_[static_cast<std::size_t>(victim)].set_state(
              ModuleState::kHealthy);
          // Imperfect repair: the competing-exponential branch already
          // decided whether this repair leaves the module degraded.
          if (!degraded_.empty())
            degraded_[static_cast<std::size_t>(victim)] =
                (group_event && group_event->repair_degrades) ? 1 : 0;
          ++result.repairs;
          // A repair may unblock guard g2 for pending credits.
          start_rejuvenations(now_, result);
          break;
        }
      }
    } else if (next_time == tick_time) {
      rejuvenator_.on_clock_tick(count(ModuleState::kRejuvenating));
      start_rejuvenations(now_, result);
    } else if (next_time == completion_time) {
      rejuvenator_.on_completion();
      for (auto& m : modules_)
        if (m.state() == ModuleState::kRejuvenating) {
          m.set_state(ModuleState::kHealthy);
          // Rejuvenation reinstalls from a clean image: good-as-new.
          if (!degraded_.empty())
            degraded_[static_cast<std::size_t>(m.id())] = 0;
        }
      // Completion may let pending credits start a late batch.
      start_rejuvenations(now_, result);
    } else if (next_time == frame_time) {
      process_frame(environment_.next(), result);
      next_frame_ += config_.frame_interval;
    }
    // Attack-window boundaries need no action: the loop resamples rates.
  }

  result.rejuvenation_batches = rejuvenator_.batches_started();
  // Normalize sojourn masses into fractions.
  double total = 0.0;
  for (const auto& [_, t] : result.state_time_fraction) total += t;
  if (total > 0.0)
    for (auto& [_, t] : result.state_time_fraction) t /= total;
  return result;
}

}  // namespace nvp::perception
