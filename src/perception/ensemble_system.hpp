#pragma once

#include <memory>
#include <vector>

#include "src/core/params.hpp"
#include "src/dataset/adversarial.hpp"
#include "src/dataset/classifier.hpp"
#include "src/dataset/eval.hpp"
#include "src/dataset/gtsrb_synth.hpp"
#include "src/perception/fault_injector.hpp"
#include "src/perception/module_sim.hpp"
#include "src/perception/rejuvenator.hpp"
#include "src/perception/system.hpp"
#include "src/perception/voter.hpp"

namespace nvp::perception {

/// ML-in-the-loop N-version perception: instead of parameterizing module
/// errors with (p, p', alpha) like NVersionPerceptionSystem, the modules
/// ARE trained classifiers (cycling the three diverse reference learners
/// with different seeds), classifying synthetic traffic-sign samples:
///
///  * healthy modules see the clean sample;
///  * compromised modules see an adversarially perturbed sample (the
///    evasion attack of the threat model) — their error rate is whatever
///    the attack achieves, not an assumed constant;
///  * failed/rejuvenating modules are silent.
///
/// The module life-cycle (compromise/failure/repair/rejuvenation) follows
/// the same continuous-time dynamics as the DSPN. This is the paper's
/// "future work: experimentally analyze our proposed approach in
/// perception systems" realized end-to-end: the measured campaign
/// reliability can be compared against the analytic prediction fed with
/// the *measured* p and p' of the very same ensemble.
class EnsemblePerceptionSystem {
 public:
  struct Config {
    /// Life-cycle and architecture parameters; the error parameters
    /// (p, p', alpha) are ignored — they emerge from the classifiers.
    core::SystemParameters params = core::SystemParameters::paper_six_version();
    dataset::SyntheticGtsrb::Config data{};
    dataset::AdversarialPerturbation::Config attack{};
    std::size_t train_samples = 4000;
    std::size_t calibration_samples = 1500;
    double frame_interval = 1.0;
    bool plurality_voter = true;  ///< deployed voters match labels
    std::uint64_t seed = 77;
  };

  /// Trains the N classifiers and calibrates their clean/adversarial
  /// error rates (takes a few seconds for MLP members).
  explicit EnsemblePerceptionSystem(const Config& config);

  /// Runs the campaign for `duration` simulated seconds.
  CampaignResult run(double duration);

  /// Measured mean inaccuracy of the healthy ensemble on clean data — the
  /// empirical counterpart of the paper's p.
  double measured_p() const { return clean_report_.mean_inaccuracy; }

  /// Measured mean inaccuracy under the adversarial perturbation — the
  /// empirical counterpart of p'.
  double measured_p_prime() const {
    return adversarial_report_.mean_inaccuracy;
  }

  /// Empirical error-dependency estimate (alpha) of the healthy ensemble.
  double measured_alpha() const {
    return dataset::estimate_alpha(clean_report_,
                                   classifiers_.size());
  }

  const dataset::EnsembleReport& clean_report() const {
    return clean_report_;
  }

  const Config& config() const { return config_; }

 private:
  void process_frame(CampaignResult& result);
  int count(ModuleState state) const;
  std::vector<int> indices_in(ModuleState state) const;
  void start_rejuvenations(double now);

  Config config_;
  util::RandomStream rng_;
  dataset::SyntheticGtsrb generator_;
  std::vector<std::unique_ptr<dataset::Classifier>> classifiers_;
  std::vector<ModuleState> states_;
  std::unique_ptr<dataset::AdversarialPerturbation> attack_;
  dataset::EnsembleReport clean_report_;
  dataset::EnsembleReport adversarial_report_;
  FaultInjector injector_;
  TimedRejuvenator rejuvenator_;
  std::unique_ptr<Voter> voter_;
  double now_ = 0.0;
  double next_frame_ = 0.0;
};

}  // namespace nvp::perception
