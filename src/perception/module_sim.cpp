#include "src/perception/module_sim.hpp"

#include "src/util/contracts.hpp"

namespace nvp::perception {

const char* to_string(ModuleState state) {
  switch (state) {
    case ModuleState::kHealthy:
      return "healthy";
    case ModuleState::kCompromised:
      return "compromised";
    case ModuleState::kFailed:
      return "failed";
    case ModuleState::kRejuvenating:
      return "rejuvenating";
  }
  return "?";
}

MlModuleSim::MlModuleSim(int id, std::string name, std::uint64_t seed)
    : id_(id), name_(std::move(name)), rng_(seed) {}

ModuleAnswer MlModuleSim::classify(int true_label, bool adverse_input,
                                   int adverse_label, double alpha,
                                   double p_prime, int num_classes) {
  NVP_EXPECTS(num_classes >= 2);
  ModuleAnswer answer;
  if (!operational()) return answer;
  answer.responded = true;
  ++answered_;

  bool errs = false;
  int label = true_label;
  if (state_ == ModuleState::kHealthy) {
    if (adverse_input && rng_.bernoulli(alpha)) {
      errs = true;
      label = adverse_label;  // common-cause victims agree on the wrong label
    }
  } else {  // compromised
    if (rng_.bernoulli(p_prime)) {
      errs = true;
      label = wrong_label(true_label, num_classes);
    }
  }
  if (errs) ++wrong_;
  answer.label = label;
  return answer;
}

int MlModuleSim::wrong_label(int true_label, int num_classes) {
  // Uniform over the other classes.
  const auto offset =
      1 + static_cast<int>(rng_.uniform_index(
              static_cast<std::uint64_t>(num_classes - 1)));
  return (true_label + offset) % num_classes;
}

}  // namespace nvp::perception
