#pragma once

#include <vector>

#include "src/core/voting.hpp"
#include "src/perception/module_sim.hpp"

namespace nvp::perception {

/// Result of voting one frame.
struct VoteResult {
  core::Verdict verdict = core::Verdict::kInconclusive;
  int correct_votes = 0;
  int wrong_votes = 0;
  int silent = 0;
  int decided_label = -1;  ///< label announced (valid for kCorrect/kError)
};

/// Voter interface over the modules' per-frame answers.
class Voter {
 public:
  virtual ~Voter() = default;

  /// Decides a frame given all module answers and the ground truth.
  virtual VoteResult vote(const std::vector<ModuleAnswer>& answers,
                          int true_label) const = 0;
};

/// Bloc-counting threshold voter matching the paper's reliability
/// functions: an error is declared when `threshold` modules answer
/// incorrectly, regardless of whether they agree on the same wrong label
/// (assumptions A.2/A.3, pessimistic).
class BlocThresholdVoter : public Voter {
 public:
  explicit BlocThresholdVoter(core::VotingScheme scheme);

  VoteResult vote(const std::vector<ModuleAnswer>& answers,
                  int true_label) const override;

 private:
  core::VotingScheme scheme_;
};

/// Plurality threshold voter: an error requires `threshold` modules to agree
/// on the *same* wrong label (optimistic; what a deployed label-matching
/// voter would do). The gap between this and BlocThresholdVoter quantifies
/// the pessimism of the paper's convention — explored in
/// bench_ablation_rewards.
class PluralityThresholdVoter : public Voter {
 public:
  explicit PluralityThresholdVoter(core::VotingScheme scheme);

  VoteResult vote(const std::vector<ModuleAnswer>& answers,
                  int true_label) const override;

 private:
  core::VotingScheme scheme_;
};

/// Weighted bloc voter for heterogeneous (module-group) architectures:
/// answers are tallied per group and decided by weighted mass against the
/// quota (core::VotingScheme::weighted), the empirical counterpart of
/// GroupReliabilityModel's reward functions. `module_group[i]` is the
/// group index of module i; VoteResult's vote counts stay unweighted.
class WeightedBlocVoter : public Voter {
 public:
  WeightedBlocVoter(core::VotingScheme scheme,
                    std::vector<int> module_group);

  VoteResult vote(const std::vector<ModuleAnswer>& answers,
                  int true_label) const override;

 private:
  core::VotingScheme scheme_;
  std::vector<int> module_group_;
};

}  // namespace nvp::perception
