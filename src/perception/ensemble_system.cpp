#include "src/perception/ensemble_system.hpp"

#include <algorithm>
#include <limits>

#include "src/util/contracts.hpp"

namespace nvp::perception {

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

std::unique_ptr<dataset::Classifier> make_member(int index,
                                                 std::uint64_t seed) {
  switch (index % 3) {
    case 0:
      return std::make_unique<dataset::NearestCentroidClassifier>();
    case 1: {
      dataset::SoftmaxRegressionClassifier::Hyper hyper;
      hyper.seed = seed;
      return std::make_unique<dataset::SoftmaxRegressionClassifier>(hyper);
    }
    default: {
      dataset::TinyMlpClassifier::Hyper hyper;
      hyper.seed = seed;
      return std::make_unique<dataset::TinyMlpClassifier>(hyper);
    }
  }
}

core::VotingScheme scheme_for(const core::SystemParameters& p) {
  return p.rejuvenation
             ? core::VotingScheme::bft_rejuvenating(p.n_versions,
                                                    p.max_faulty,
                                                    p.max_rejuvenating)
             : core::VotingScheme::bft(p.n_versions, p.max_faulty);
}

}  // namespace

EnsemblePerceptionSystem::EnsemblePerceptionSystem(const Config& config)
    : config_(config),
      rng_(config.seed),
      generator_(config.data),
      injector_(
          FaultInjector::Config{config.params.mean_time_to_compromise,
                                config.params.mean_time_to_failure,
                                config.params.mean_time_to_repair,
                                config.params.semantics},
          config.seed ^ 0xFA17ULL),
      rejuvenator_(
          TimedRejuvenator::Config{config.params.rejuvenation,
                                   config.params.rejuvenation_interval,
                                   config.params.rejuvenation_duration,
                                   config.params.max_rejuvenating},
          config.seed ^ 0x4E30ULL) {
  config.params.validate();
  NVP_EXPECTS(config.train_samples >= 100);
  NVP_EXPECTS(config.calibration_samples >= 100);

  const core::VotingScheme scheme = scheme_for(config.params);
  if (config.plurality_voter)
    voter_ = std::make_unique<PluralityThresholdVoter>(scheme);
  else
    voter_ = std::make_unique<BlocThresholdVoter>(scheme);

  // Train N diverse members: the three learner families cycled with
  // different seeds, each on its own training draw (bagging-style
  // diversity on top of hypothesis-class diversity).
  util::SeedSequence seeds(config.seed ^ 0x7EA1ULL);
  for (int i = 0; i < config.params.n_versions; ++i) {
    auto member = make_member(i, seeds.next());
    const auto train = generator_.generate(config.train_samples);
    member->fit(train);
    classifiers_.push_back(std::move(member));
    states_.push_back(ModuleState::kHealthy);
  }
  attack_ = std::make_unique<dataset::AdversarialPerturbation>(
      config.attack, generator_.prototypes());

  // Calibrate the measured p / p' on a held-out split.
  const auto held_out = generator_.generate(config.calibration_samples);
  clean_report_ = dataset::evaluate_ensemble(classifiers_, held_out);
  adversarial_report_ =
      dataset::evaluate_ensemble(classifiers_, attack_->perturb(held_out));

  next_frame_ = config.frame_interval;
}

int EnsemblePerceptionSystem::count(ModuleState state) const {
  int n = 0;
  for (ModuleState s : states_)
    if (s == state) ++n;
  return n;
}

std::vector<int> EnsemblePerceptionSystem::indices_in(
    ModuleState state) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (states_[i] == state) out.push_back(static_cast<int>(i));
  return out;
}

void EnsemblePerceptionSystem::start_rejuvenations(double now) {
  const int failed = count(ModuleState::kFailed);
  const int rejuvenating = count(ModuleState::kRejuvenating);
  const int operational = count(ModuleState::kHealthy) +
                          count(ModuleState::kCompromised);
  const int starts =
      rejuvenator_.claim_starts(failed, rejuvenating, operational);
  for (int s = 0; s < starts; ++s) {
    auto pool = indices_in(ModuleState::kHealthy);
    const auto compromised = indices_in(ModuleState::kCompromised);
    pool.insert(pool.end(), compromised.begin(), compromised.end());
    NVP_ASSERT(!pool.empty());
    states_[static_cast<std::size_t>(
        pool[rng_.uniform_index(pool.size())])] =
        ModuleState::kRejuvenating;
  }
  if (starts > 0)
    rejuvenator_.schedule_completion(now,
                                     count(ModuleState::kRejuvenating));
}

void EnsemblePerceptionSystem::process_frame(CampaignResult& result) {
  // One fresh labelled sample; every module sees (its view of) it.
  const auto clean = generator_.generate(1);
  const dataset::Sample& sample = clean.samples.front();

  std::vector<ModuleAnswer> answers;
  answers.reserve(classifiers_.size());
  for (std::size_t i = 0; i < classifiers_.size(); ++i) {
    ModuleAnswer answer;
    switch (states_[i]) {
      case ModuleState::kHealthy:
        answer.responded = true;
        answer.label = classifiers_[i]->predict(sample.features);
        break;
      case ModuleState::kCompromised: {
        // The attacker controls this module's input channel.
        const auto adversarial = attack_->perturb(sample);
        answer.responded = true;
        answer.label = classifiers_[i]->predict(adversarial.features);
        break;
      }
      case ModuleState::kFailed:
      case ModuleState::kRejuvenating:
        break;  // silent
    }
    answers.push_back(answer);
  }

  const VoteResult vote = voter_->vote(answers, sample.label);
  ++result.frames;
  switch (vote.verdict) {
    case core::Verdict::kCorrect:
      ++result.correct;
      break;
    case core::Verdict::kError:
      ++result.errors;
      break;
    case core::Verdict::kInconclusive:
      ++result.inconclusive;
      break;
    case core::Verdict::kUnavailable:
      ++result.unavailable;
      break;
  }
}

CampaignResult EnsemblePerceptionSystem::run(double duration) {
  NVP_EXPECTS(duration > 0.0);
  CampaignResult result;
  const double end_time = now_ + duration;

  while (now_ < end_time) {
    const int healthy = count(ModuleState::kHealthy);
    const int compromised = count(ModuleState::kCompromised);
    const int failed = count(ModuleState::kFailed);

    double lifecycle_time = kNever;
    LifecycleEventKind lifecycle_kind = LifecycleEventKind::kCompromise;
    if (const auto ev =
            injector_.sample_next(now_, healthy, compromised, failed)) {
      lifecycle_time = ev->time;
      lifecycle_kind = ev->kind;
    }
    const double next_time =
        std::min({lifecycle_time, rejuvenator_.next_clock_tick(),
                  rejuvenator_.next_completion(), next_frame_, end_time});

    const int down = failed + count(ModuleState::kRejuvenating);
    result.state_time_fraction[{healthy, compromised, down}] +=
        next_time - now_;
    now_ = next_time;
    if (now_ >= end_time) break;

    if (next_time == lifecycle_time) {
      const ModuleState from =
          lifecycle_kind == LifecycleEventKind::kCompromise
              ? ModuleState::kHealthy
              : lifecycle_kind == LifecycleEventKind::kFail
                    ? ModuleState::kCompromised
                    : ModuleState::kFailed;
      const ModuleState to =
          lifecycle_kind == LifecycleEventKind::kCompromise
              ? ModuleState::kCompromised
              : lifecycle_kind == LifecycleEventKind::kFail
                    ? ModuleState::kFailed
                    : ModuleState::kHealthy;
      const auto pool = indices_in(from);
      NVP_ASSERT(!pool.empty());
      states_[static_cast<std::size_t>(
          pool[rng_.uniform_index(pool.size())])] = to;
      switch (lifecycle_kind) {
        case LifecycleEventKind::kCompromise:
          ++result.compromises;
          break;
        case LifecycleEventKind::kFail:
          ++result.failures;
          break;
        case LifecycleEventKind::kRepair:
          ++result.repairs;
          start_rejuvenations(now_);
          break;
      }
    } else if (next_time == rejuvenator_.next_clock_tick()) {
      rejuvenator_.on_clock_tick(count(ModuleState::kRejuvenating));
      start_rejuvenations(now_);
    } else if (next_time == rejuvenator_.next_completion()) {
      rejuvenator_.on_completion();
      for (auto& state : states_)
        if (state == ModuleState::kRejuvenating)
          state = ModuleState::kHealthy;
      start_rejuvenations(now_);
    } else if (next_time == next_frame_) {
      process_frame(result);
      next_frame_ += config_.frame_interval;
    }
  }

  result.rejuvenation_batches = rejuvenator_.batches_started();
  double total = 0.0;
  for (const auto& [_, t] : result.state_time_fraction) total += t;
  if (total > 0.0)
    for (auto& [_, t] : result.state_time_fraction) t /= total;
  return result;
}

}  // namespace nvp::perception
