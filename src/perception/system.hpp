#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/core/params.hpp"
#include "src/core/voting.hpp"
#include "src/perception/adaptive.hpp"
#include "src/perception/environment.hpp"
#include "src/perception/fault_injector.hpp"
#include "src/perception/module_sim.hpp"
#include "src/perception/rejuvenator.hpp"
#include "src/perception/sensor.hpp"
#include "src/perception/voter.hpp"

namespace nvp::perception {

/// Aggregate outcome of a simulated campaign.
struct CampaignResult {
  std::uint64_t frames = 0;
  std::uint64_t correct = 0;
  std::uint64_t errors = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t unavailable = 0;

  std::uint64_t compromises = 0;
  std::uint64_t failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t rejuvenation_batches = 0;

  /// Safety-oriented burst statistics: consecutive perception errors are
  /// far more dangerous than isolated ones (a vehicle can coast through
  /// one bad frame). `longest_error_burst` is the maximum run of
  /// consecutive error verdicts; `error_bursts_at_least_3` counts maximal
  /// runs of length >= 3.
  std::uint64_t longest_error_burst = 0;
  std::uint64_t error_bursts_at_least_3 = 0;

  /// Fraction of campaign time spent in each (healthy, compromised, down)
  /// module-state class — directly comparable to the DSPN's stationary
  /// distribution.
  std::map<std::tuple<int, int, int>, double> state_time_fraction;

  /// Empirical counterpart of the paper's E[R_sys]: frames are reliable
  /// unless the voter erred or could not gather enough answers
  /// (unavailable states carry reward 0 in the paper's matrices).
  double paper_reliability() const {
    return frames == 0 ? 0.0
                       : 1.0 - static_cast<double>(errors + unavailable) /
                                   static_cast<double>(frames);
  }

  /// Stricter metric: fraction of frames with a correct decision.
  double strict_reliability() const {
    return frames == 0
               ? 0.0
               : static_cast<double>(correct) / static_cast<double>(frames);
  }
};

/// Executable N-version perception system: N simulated ML module versions
/// fed by diverse sensors, a fault/attack injector, an optional time-based
/// rejuvenation manager, and a BFT-style voter — the whole architecture of
/// the paper's Fig. 1 as a Monte-Carlo system rather than a DSPN.
///
/// Its long-run empirical reliability converges to the analytic E[R_sys]
/// of ReliabilityAnalyzer when configured with the same parameters and the
/// bloc voter, which is the repository's end-to-end validation
/// (DESIGN.md §6, bench_sim_crosscheck).
class NVersionPerceptionSystem {
 public:
  struct Config {
    core::SystemParameters params;  ///< architecture + Table II parameters
    double frame_interval = 1.0;    ///< seconds between perception requests
    int num_classes = 43;
    bool plurality_voter = false;   ///< label-matching voter instead of bloc
    /// Threat-adaptive rejuvenation: when set, the rejuvenation interval
    /// follows an AdaptiveIntervalController fed with the voter's verdicts
    /// instead of staying fixed (requires params.rejuvenation).
    bool adaptive_rejuvenation = false;
    AdaptiveIntervalController::Config adaptive{};
    std::uint64_t seed = 2024;
  };

  explicit NVersionPerceptionSystem(const Config& config);

  /// Runs the campaign for `duration` simulated seconds and returns the
  /// aggregate statistics. May be called repeatedly; state persists across
  /// calls (use a fresh system for independent replications).
  CampaignResult run(double duration);

  /// Registers an adversarial burst multiplying the compromise rate.
  void add_attack_window(const FaultInjector::AttackWindow& window);

  /// Per-frame tap for external observers (the runtime monitor): invoked
  /// after every vote with the frame, the raw per-module answers, and the
  /// vote result. The observer consumes no campaign randomness, so a
  /// campaign is bit-identical with or without one installed.
  using FrameObserver = std::function<void(
      const Frame&, const std::vector<ModuleAnswer>&, const VoteResult&)>;
  void set_frame_observer(FrameObserver observer) {
    frame_observer_ = std::move(observer);
  }

  /// Retunes the rejuvenation clock in-loop (closed-loop adaptive
  /// rejuvenation): future re-arms use the new interval, and a pending
  /// expiry is pulled in when the new interval would fire sooner.
  void set_rejuvenation_interval(double interval) {
    rejuvenator_.set_interval(interval, now_);
  }

  /// The interval the rejuvenation clock currently runs at.
  double rejuvenation_interval() const { return rejuvenator_.interval(); }

  /// Read-only module access for inspection/examples.
  const std::vector<MlModuleSim>& modules() const { return modules_; }

  /// Adaptive controller state (valid when adaptive_rejuvenation is on).
  const AdaptiveIntervalController* adaptive_controller() const {
    return adaptive_ ? &*adaptive_ : nullptr;
  }

  const Config& config() const { return config_; }

 private:
  /// One sampled life-cycle event of a heterogeneous (module-group)
  /// campaign. `from_degraded` marks a compromise out of the degraded
  /// pool; `repair_degrades` marks a repair that leaves the module
  /// degraded (imperfect repair, probability q realized by competing
  /// exponentials exactly as in the DSPN).
  struct GroupLifecycleEvent {
    double time = 0.0;
    LifecycleEventKind kind = LifecycleEventKind::kCompromise;
    int group = 0;
    bool from_degraded = false;
    bool repair_degrades = false;
  };

  int count(ModuleState state) const;
  std::vector<int> indices_in(ModuleState state) const;
  std::vector<int> group_indices_in(int group, ModuleState state,
                                    bool degraded) const;
  std::optional<GroupLifecycleEvent> sample_group_lifecycle(double now);
  void start_rejuvenations(double now, CampaignResult& result);
  void process_frame(const Frame& frame, CampaignResult& result);

  Config config_;
  util::RandomStream rng_;
  std::vector<MlModuleSim> modules_;
  std::vector<SensorModel> sensors_;
  FaultInjector injector_;
  TimedRejuvenator rejuvenator_;
  std::unique_ptr<Voter> voter_;
  FrameObserver frame_observer_;
  std::optional<AdaptiveIntervalController> adaptive_;
  Environment environment_;
  /// Module groups of a heterogeneous campaign (empty = homogeneous, the
  /// pre-refactor paths bit for bit), the group index of each module, and
  /// the per-module imperfect-repair degradation flag (degraded modules
  /// stay kHealthy for voting; only their compromise rate changes).
  std::vector<core::ModuleGroup> groups_;
  std::vector<int> module_group_;
  std::vector<char> degraded_;
  double now_ = 0.0;
  double next_frame_ = 0.0;
  std::uint64_t current_error_burst_ = 0;
};

}  // namespace nvp::perception
