#include "src/perception/rejuvenator.hpp"

#include <algorithm>
#include <limits>

#include "src/util/contracts.hpp"

namespace nvp::perception {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}

TimedRejuvenator::TimedRejuvenator(const Config& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      next_tick_(config.enabled ? config.interval : kNever),
      completion_(kNever) {
  if (config.enabled) {
    NVP_EXPECTS(config.interval > 0.0);
    NVP_EXPECTS(config.duration > 0.0);
    NVP_EXPECTS(config.max_rejuvenating >= 1);
  }
}

void TimedRejuvenator::set_interval(double interval, double now) {
  NVP_EXPECTS(config_.enabled);
  NVP_EXPECTS(interval > 0.0);
  NVP_EXPECTS(now >= 0.0);
  config_.interval = interval;
  next_tick_ = std::min(next_tick_, now + interval);
}

int TimedRejuvenator::on_clock_tick(int rejuvenating_now) {
  NVP_EXPECTS(config_.enabled);
  NVP_EXPECTS(rejuvenating_now >= 0);
  next_tick_ += config_.interval;  // Trt: clock re-arms immediately
  // Guard g1: a fresh batch only when the previous one fully drained.
  if (credits_ == 0 && rejuvenating_now == 0) {
    credits_ = config_.max_rejuvenating;
    ++batches_;
    return credits_;
  }
  return 0;
}

int TimedRejuvenator::claim_starts(int failed, int rejuvenating,
                                   int operational) {
  NVP_EXPECTS(failed >= 0 && rejuvenating >= 0 && operational >= 0);
  if (!config_.enabled || credits_ == 0) return 0;
  int starts = 0;
  int f = failed, rej = rejuvenating, avail = operational;
  // Guard g2 per credit: #failed + #rejuvenating < r, and a module must be
  // available to pick (input arcs of Trj1/Trj2).
  while (credits_ > 0 && f + rej < config_.max_rejuvenating && avail > 0) {
    --credits_;
    ++rej;
    --avail;
    ++starts;
  }
  return starts;
}

void TimedRejuvenator::schedule_completion(double now,
                                           int rejuvenating_total) {
  NVP_EXPECTS(config_.enabled);
  NVP_EXPECTS(rejuvenating_total >= 1);
  // Trj: exponential with marking-dependent mean #Pmr * duration. The whole
  // batch completes together (arc weights w5/w6).
  const double mean =
      static_cast<double>(rejuvenating_total) * config_.duration;
  completion_ = now + rng_.exponential(1.0 / mean);
}

void TimedRejuvenator::on_completion() {
  NVP_EXPECTS(completion_ != kNever);
  completion_ = kNever;
}

}  // namespace nvp::perception
