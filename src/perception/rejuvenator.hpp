#pragma once

#include <cstdint>
#include <optional>

#include "src/util/rng.hpp"

namespace nvp::perception {

/// Time-based rejuvenation manager mirroring the DSPN of Fig. 2(b, c):
///  * a deterministic clock expires every `interval` seconds;
///  * on expiry, if no batch is pending or in progress, a batch of r
///    "credits" is activated (Tac, guard g1) and the clock re-arms
///    immediately (Trt, guard g3);
///  * credits convert into rejuvenating modules only while fewer than r
///    modules are failed-or-rejuvenating (guard g2), one module per credit,
///    chosen uniformly among operational modules (weights w1/w2);
///  * an in-progress batch of b modules completes after an exponential time
///    with mean b * duration (transition Trj with 1/mu_r = #Pmr * duration).
///
/// The manager tracks clock, credits, and batch completion; the system
/// supplies module counts and applies the state changes.
class TimedRejuvenator {
 public:
  struct Config {
    bool enabled = true;
    double interval = 600.0;   ///< 1/gamma
    double duration = 3.0;     ///< per-module mean rejuvenation time
    int max_rejuvenating = 1;  ///< r
  };

  TimedRejuvenator(const Config& config, std::uint64_t seed);

  const Config& config() const { return config_; }

  /// Next clock expiry (infinity when disabled).
  double next_clock_tick() const { return next_tick_; }

  /// Retunes the interval (threat-adaptive rejuvenation): future re-arms
  /// use the new value, and an already-armed expiry is pulled in when the
  /// new interval would fire sooner than the pending one.
  void set_interval(double interval, double now);

  double interval() const { return config_.interval; }

  /// Called when the clock expires: re-arms the clock; activates a new
  /// credit batch iff no credits are pending and no batch is in progress
  /// (guard g1). Returns the number of credits activated (0 or r).
  int on_clock_tick(int rejuvenating_now);

  /// Credits waiting for guard g2 to open.
  int pending_credits() const { return credits_; }

  /// Converts pending credits into rejuvenation starts: returns how many
  /// modules should start rejuvenating now, given current failed and
  /// rejuvenating counts and the number of operational modules available.
  /// Decrements credits accordingly; the caller picks the victims.
  int claim_starts(int failed, int rejuvenating, int operational);

  /// Called when modules start rejuvenating, to (re)sample the batch
  /// completion time: with b modules now in the batch, completion is
  /// exponential with mean b * duration from now.
  void schedule_completion(double now, int rejuvenating_total);

  /// Completion time of the in-flight batch (infinity if none).
  double next_completion() const { return completion_; }

  /// Called when the batch completes; clears the completion timer.
  void on_completion();

  std::uint64_t batches_started() const { return batches_; }

 private:
  Config config_;
  util::RandomStream rng_;
  double next_tick_;
  double completion_;
  int credits_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace nvp::perception
