#pragma once

#include <optional>
#include <vector>

#include "src/core/params.hpp"
#include "src/util/rng.hpp"

namespace nvp::perception {

/// Kinds of module life-cycle events driven by faults, attacks, and repair.
enum class LifecycleEventKind { kCompromise, kFail, kRepair };

/// One sampled life-cycle event.
struct LifecycleEvent {
  double time = 0.0;
  LifecycleEventKind kind = LifecycleEventKind::kCompromise;
};

/// Generates the fault/attack/repair dynamics of §IV-A in continuous time,
/// mirroring the DSPN's exponential transitions:
///  * compromise (Tc): healthy -> compromised, rate 1/mttc — an adversarial
///    or transient-fault event hitting one module at a time (single-server)
///    or each healthy module independently (infinite-server ablation);
///  * failure (Tf): compromised -> non-operational, rate 1/mttf;
///  * repair (Tr): non-operational -> healthy, rate 1/mttr.
///
/// Attack campaigns: piecewise-constant windows multiply the compromise
/// rate (e.g. an adversarial burst at x8 for ten minutes). Sampling stays
/// exact because the system re-samples at every event and the injector
/// reports window boundaries as resampling points.
class FaultInjector {
 public:
  struct Config {
    double mean_time_to_compromise = 1523.0;
    double mean_time_to_failure = 3000.0;
    double mean_time_to_repair = 3.0;
    core::FiringSemantics semantics = core::FiringSemantics::kSingleServer;
  };

  /// A burst of elevated attack pressure.
  struct AttackWindow {
    double start = 0.0;
    double end = 0.0;
    double rate_multiplier = 1.0;
  };

  FaultInjector(const Config& config, std::uint64_t seed);

  /// Registers an attack window (may overlap others; multipliers of
  /// overlapping windows multiply).
  void add_attack_window(const AttackWindow& window);

  /// Effective compromise-rate multiplier at time t.
  double attack_multiplier_at(double t) const;

  /// Next attack-window boundary strictly after t (resampling point), if
  /// any.
  std::optional<double> next_boundary_after(double t) const;

  /// Samples the earliest life-cycle event after `now` for the given module
  /// counts, assuming rates stay constant (the caller must cap the result
  /// at next_boundary_after(now) and re-sample). Returns nullopt if no
  /// event can occur (all counts zero).
  std::optional<LifecycleEvent> sample_next(double now, int healthy,
                                            int compromised, int failed);

 private:
  Config config_;
  util::RandomStream rng_;
  std::vector<AttackWindow> windows_;
};

}  // namespace nvp::perception
