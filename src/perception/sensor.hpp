#pragma once

#include <string>
#include <vector>

#include "src/perception/environment.hpp"
#include "src/util/rng.hpp"

namespace nvp::perception {

/// Kind of physical sensor feeding an ML module.
enum class SensorKind { kCamera, kLidar, kRadar };

const char* to_string(SensorKind kind);

/// Sensor observation handed to an ML module: the (hidden) true label plus
/// the per-sensor degradation the module experiences for this frame.
struct Observation {
  int true_label = 0;
  /// Effective difficulty after sensor-specific transfer: cameras suffer
  /// from visual difficulty, lidar/radar much less.
  double effective_difficulty = 0.0;
  /// Additive sensor noise level in [0, 1] (electronics, weather).
  double noise = 0.0;
};

/// Simple sensor model: maps a ground-truth frame to an observation,
/// attenuating or amplifying scene difficulty per sensor physics and adding
/// a small random noise floor. Deliberately lightweight — the reliability
/// models consume only error probabilities, but the examples use sensor
/// diversity to justify version diversity (Fig. 1 of the paper).
class SensorModel {
 public:
  SensorModel(SensorKind kind, std::uint64_t seed);

  Observation observe(const Frame& frame);

  SensorKind kind() const { return kind_; }
  std::string name() const { return to_string(kind_); }

 private:
  SensorKind kind_;
  util::RandomStream rng_;
};

}  // namespace nvp::perception
