#pragma once

#include <cstdint>

#include "src/util/contracts.hpp"

namespace nvp::perception {

/// Threat-adaptive rejuvenation-interval controller (in the spirit of
/// threat-adaptive BFT — the paper's reference [20] — applied to the
/// rejuvenation clock): a deployed system cannot observe compromises
/// directly, but it can observe the voter's verdicts. The controller
/// watches the rate of *suspicious* verdicts (errors + inconclusive
/// rounds) over a sliding window and
///
///  * halves the rejuvenation interval (down to `min_interval`) when the
///    suspicion rate crosses `suspicion_threshold` — flushing compromised
///    modules faster while under pressure;
///  * relaxes the interval additively (up to `max_interval`) while the
///    system looks healthy — reclaiming the rejuvenation overhead.
///
/// Pure decision logic (no clocks), so it is unit-testable and reusable by
/// both the Monte-Carlo system and a deployment.
class AdaptiveIntervalController {
 public:
  struct Config {
    double initial_interval = 600.0;
    double min_interval = 60.0;
    double max_interval = 3000.0;
    std::uint64_t window_frames = 200;  ///< verdicts per decision window
    double suspicion_threshold = 0.10;  ///< suspicious fraction triggering
    double relax_step = 60.0;           ///< additive increase when calm
  };

  explicit AdaptiveIntervalController(const Config& config)
      : config_(config), interval_(config.initial_interval) {
    NVP_EXPECTS(config.min_interval > 0.0);
    NVP_EXPECTS(config.max_interval >= config.min_interval);
    NVP_EXPECTS(config.initial_interval >= config.min_interval &&
                config.initial_interval <= config.max_interval);
    NVP_EXPECTS(config.window_frames >= 1);
    NVP_EXPECTS(config.suspicion_threshold > 0.0 &&
                config.suspicion_threshold < 1.0);
    NVP_EXPECTS(config.relax_step > 0.0);
  }

  /// Records one voting round; returns true if the interval changed (the
  /// caller should push current_interval() into its rejuvenation clock).
  bool record_verdict(bool suspicious);

  double current_interval() const { return interval_; }
  std::uint64_t tightenings() const { return tightenings_; }
  std::uint64_t relaxations() const { return relaxations_; }

 private:
  Config config_;
  double interval_;
  std::uint64_t window_count_ = 0;
  std::uint64_t window_suspicious_ = 0;
  std::uint64_t tightenings_ = 0;
  std::uint64_t relaxations_ = 0;
};

}  // namespace nvp::perception
