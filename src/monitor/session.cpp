#include "src/monitor/session.hpp"

#include <cmath>

#include "src/fault/error.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace nvp::monitor {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double DriftSchedule::multiplier_at(double t) const {
  switch (kind) {
    case Kind::kStep:
      return t >= period ? multiplier : 1.0;
    case Kind::kRamp: {
      if (t < period) return 1.0;
      if (t >= 2.0 * period) return multiplier;
      return 1.0 + (multiplier - 1.0) * (t - period) / period;
    }
    case Kind::kSinusoid:
      return 1.0 +
             (multiplier - 1.0) * 0.5 *
                 (1.0 - std::cos(2.0 * kPi * t / period));
  }
  return 1.0;
}

DriftSchedule::Kind DriftSchedule::parse_kind(const std::string& name) {
  if (name == "step") return Kind::kStep;
  if (name == "ramp") return Kind::kRamp;
  if (name == "sinusoid") return Kind::kSinusoid;
  fault::Context context;
  context.site = "monitor.session";
  throw fault::Error(fault::Category::kInvalidModel,
                     "unknown drift schedule '" + name +
                         "' (expected step|ramp|sinusoid)",
                     std::move(context));
}

const char* DriftSchedule::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kStep:
      return "step";
    case Kind::kRamp:
      return "ramp";
    case Kind::kSinusoid:
      return "sinusoid";
  }
  return "?";
}

std::vector<perception::FaultInjector::AttackWindow> make_drift_windows(
    const DriftSchedule& schedule, double duration) {
  NVP_EXPECTS(duration > 0.0);
  NVP_EXPECTS(schedule.segment > 0.0);
  NVP_EXPECTS(schedule.multiplier >= 1.0);
  NVP_EXPECTS(schedule.period > 0.0);
  std::vector<perception::FaultInjector::AttackWindow> windows;
  const auto segments =
      static_cast<std::size_t>(std::ceil(duration / schedule.segment));
  for (std::size_t i = 0; i < segments; ++i) {
    const double start = static_cast<double>(i) * schedule.segment;
    const double end = std::min(duration, start + schedule.segment);
    // Sample at the segment midpoint: the piecewise-constant realization
    // of the continuous schedule.
    const double m = schedule.multiplier_at(0.5 * (start + end));
    if (std::abs(m - 1.0) < 1e-9) continue;
    // Consecutive equal-multiplier segments merge into one window.
    if (!windows.empty() && windows.back().end == start &&
        windows.back().rate_multiplier == m) {
      windows.back().end = end;
      continue;
    }
    windows.push_back({start, end, m});
  }
  return windows;
}

namespace {

perception::NVersionPerceptionSystem make_system(
    const SessionConfig& config, double rejuvenation_interval) {
  NVP_EXPECTS_MSG(config.params.rejuvenation,
                  "monitor sessions steer the rejuvenation clock; configure "
                  "the rejuvenating model");
  perception::NVersionPerceptionSystem::Config system_config;
  system_config.params = config.params;
  system_config.params.rejuvenation_interval = rejuvenation_interval;
  system_config.frame_interval = config.frame_interval;
  // The campaign consumes substream 0 of the session seed; substreams ≥ 1
  // are reserved for future stochastic monitor components.
  system_config.seed = util::substream_seed(config.seed, 0);
  perception::NVersionPerceptionSystem system(system_config);
  for (const auto& window : make_drift_windows(config.schedule,
                                               config.duration))
    system.add_attack_window(window);
  return system;
}

/// Time-weighted mean of the applied interval over [0, duration], from the
/// piecewise-constant record log.
double mean_applied_interval(const std::vector<ControlRecord>& records,
                             double initial, double duration) {
  double mean = 0.0;
  double last_time = 0.0;
  double current = initial;
  for (const ControlRecord& r : records) {
    if (!r.retuned) continue;
    mean += current * (r.time - last_time);
    last_time = r.time;
    current = r.applied_interval;
  }
  mean += current * (duration - last_time);
  return duration > 0.0 ? mean / duration : initial;
}

}  // namespace

SessionResult run_monitor_session(const core::Engine& engine,
                                  const SessionConfig& config) {
  perception::NVersionPerceptionSystem system =
      make_system(config, config.params.rejuvenation_interval);

  MonitorController::Config controller_config = config.controller;
  controller_config.params = config.params;
  MonitorController controller(engine, controller_config,
                               make_policy(config.policy, config.hysteresis));
  controller.set_retune_callback(
      [&system](double interval) {
        system.set_rejuvenation_interval(interval);
      });
  system.set_frame_observer(
      [&controller, &config](
          const perception::Frame& frame,
          const std::vector<perception::ModuleAnswer>& answers,
          const perception::VoteResult& vote) {
        (void)vote;
        controller.observe_frame(frame.time, config.frame_interval, answers,
                                 frame.label);
      });

  SessionResult result;
  result.campaign = system.run(config.duration);
  result.records = controller.records();
  result.updates = controller.updates();
  result.resolves = controller.resolves();
  result.retunes = controller.retunes();
  result.degraded_updates = controller.degraded_updates();
  result.detections = controller.estimator().detections();
  result.final_interval = controller.applied_interval();
  result.mean_interval = mean_applied_interval(
      result.records, config.params.rejuvenation_interval, config.duration);
  result.reliability = result.campaign.paper_reliability();
  return result;
}

perception::CampaignResult run_static_campaign(const SessionConfig& config,
                                               double interval) {
  perception::NVersionPerceptionSystem system =
      make_system(config, interval);
  return system.run(config.duration);
}

}  // namespace nvp::monitor
