#include "src/monitor/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/contracts.hpp"

namespace nvp::monitor {

namespace {
constexpr double kZ95 = 1.959963984540054;  ///< Φ⁻¹(0.975)

/// Wilson–Hilferty approximation of the Gamma(shape, rate) quantile at the
/// standard-normal deviate `z`: a chi-square variate to the power 1/3 is
/// close to normal, which gives closed-form quantiles accurate to a few
/// percent for shape ≳ 1 — plenty for credible-interval reporting.
double gamma_quantile(double shape, double rate, double z) {
  const double c = 1.0 - 1.0 / (9.0 * shape) + z / (3.0 * std::sqrt(shape));
  const double q = shape / rate * c * c * c;
  return std::max(0.0, q);
}
}  // namespace

RateEstimator::RateEstimator(const Config& config) : config_(config) {
  NVP_EXPECTS(config.window > 0.0);
  NVP_EXPECTS(config.bucket > 0.0);
  NVP_EXPECTS(config.prior_shape > 0.0);
  NVP_EXPECTS(config.prior_exposure > 0.0);
}

void RateEstimator::observe(double time, double events, double exposure) {
  const auto index =
      static_cast<std::int64_t>(std::floor(time / config_.bucket));
  if (buckets_.empty() || buckets_.back().index != index)
    buckets_.push_back(Bucket{index, 0.0, 0.0});
  buckets_.back().events += events;
  buckets_.back().exposure += exposure;
  evict(index);
}

void RateEstimator::evict(std::int64_t newest) {
  const auto span =
      static_cast<std::int64_t>(std::ceil(config_.window / config_.bucket));
  while (!buckets_.empty() && buckets_.front().index <= newest - span)
    buckets_.pop_front();
}

Estimate RateEstimator::estimate() const {
  double k = 0.0;
  double t = 0.0;
  for (const Bucket& b : buckets_) {
    k += b.events;
    t += b.exposure;
  }
  Estimate e;
  e.events = k;
  e.exposure = t;
  e.mle = t > 0.0 ? k / t : 0.0;
  const double shape = config_.prior_shape + k;
  const double rate = config_.prior_exposure + t;
  e.mean = shape / rate;
  e.lo95 = gamma_quantile(shape, rate, -kZ95);
  e.hi95 = gamma_quantile(shape, rate, kZ95);
  return e;
}

ProbabilityEstimator::ProbabilityEstimator(const Config& config)
    : config_(config) {
  NVP_EXPECTS(config.window > 0.0);
  NVP_EXPECTS(config.bucket > 0.0);
  NVP_EXPECTS(config.prior_errors > 0.0);
  NVP_EXPECTS(config.prior_successes > 0.0);
}

void ProbabilityEstimator::observe(double time, double errors,
                                   double trials) {
  const auto index =
      static_cast<std::int64_t>(std::floor(time / config_.bucket));
  if (buckets_.empty() || buckets_.back().index != index)
    buckets_.push_back(Bucket{index, 0.0, 0.0});
  buckets_.back().errors += errors;
  buckets_.back().trials += trials;
  evict(index);
}

void ProbabilityEstimator::evict(std::int64_t newest) {
  const auto span =
      static_cast<std::int64_t>(std::ceil(config_.window / config_.bucket));
  while (!buckets_.empty() && buckets_.front().index <= newest - span)
    buckets_.pop_front();
}

Estimate ProbabilityEstimator::estimate() const {
  double errors = 0.0;
  double trials = 0.0;
  for (const Bucket& b : buckets_) {
    errors += b.errors;
    trials += b.trials;
  }
  Estimate e;
  e.events = errors;
  e.exposure = trials;
  e.mle = trials > 0.0 ? errors / trials : 0.0;
  const double a = config_.prior_errors + errors;
  const double b = config_.prior_successes + (trials - errors);
  e.mean = a / (a + b);
  const double sd = std::sqrt(e.mean * (1.0 - e.mean) / (a + b + 1.0));
  e.lo95 = std::max(0.0, e.mean - kZ95 * sd);
  e.hi95 = std::min(1.0, e.mean + kZ95 * sd);
  return e;
}

VerdictStreamEstimator::VerdictStreamEstimator(int num_modules,
                                               const Config& config)
    : config_(config),
      modules_(static_cast<std::size_t>(num_modules)),
      rate_(config.rate),
      probability_(config.probability) {
  NVP_EXPECTS(num_modules > 0);
  NVP_EXPECTS(config.detector_window > 0);
  NVP_EXPECTS(config.detector_min_frames > 0);
  NVP_EXPECTS(config.detector_min_frames <= config.detector_window);
  NVP_EXPECTS(config.clear_threshold < config.flag_threshold);
}

void VerdictStreamEstimator::observe_frame(
    double time, double dt,
    const std::vector<perception::ModuleAnswer>& answers, int true_label) {
  NVP_EXPECTS(answers.size() == modules_.size());
  int at_risk = 0;
  double p_trials = 0.0;
  double p_errors = 0.0;
  double events = 0.0;
  for (std::size_t m = 0; m < modules_.size(); ++m) {
    ModuleWindow& w = modules_[m];
    const perception::ModuleAnswer& answer = answers[m];
    if (!answer.responded) {
      // Silent = failed or rejuvenating. Either way the module re-enters
      // service good-as-new, so the detector restarts its evidence window.
      w.reset();
      w.flagged = false;
      continue;
    }
    const bool wrong = answer.label != true_label;
    w.wrong.push_back(wrong ? 1 : 0);
    w.wrong_count += wrong ? 1 : 0;
    while (static_cast<int>(w.wrong.size()) > config_.detector_window) {
      w.wrong_count -= w.wrong.front();
      w.wrong.pop_front();
    }
    const auto frames = static_cast<int>(w.wrong.size());
    const double error_rate =
        static_cast<double>(w.wrong_count) / static_cast<double>(frames);
    if (!w.flagged) {
      ++at_risk;  // exposure accrued while the module looked healthy
      if (frames >= config_.detector_min_frames &&
          error_rate >= config_.flag_threshold) {
        w.flagged = true;
        events += 1.0;
        ++detections_;
      }
    } else {
      p_trials += 1.0;
      p_errors += wrong ? 1.0 : 0.0;
      if (frames >= config_.detector_min_frames &&
          error_rate <= config_.clear_threshold)
        w.flagged = false;
    }
  }
  // Single-server semantics: the attack transition is enabled (at the
  // system-level rate 1/mttc) whenever any at-risk module exists, so a
  // frame contributes dt of exposure regardless of how many modules could
  // be hit. Infinite-server: each at-risk module is its own server.
  const double exposure =
      config_.semantics == core::FiringSemantics::kInfiniteServer
          ? static_cast<double>(at_risk) * dt
          : (at_risk > 0 ? dt : 0.0);
  rate_.observe(time, events, exposure);
  if (p_trials > 0.0) probability_.observe(time, p_errors, p_trials);
}

int VerdictStreamEstimator::flagged() const {
  int n = 0;
  for (const ModuleWindow& w : modules_)
    if (w.flagged) ++n;
  return n;
}

}  // namespace nvp::monitor
