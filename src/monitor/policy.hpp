#pragma once

#include <memory>
#include <string>

namespace nvp::monitor {

/// What a policy decided about the rejuvenation clock for one update.
struct PolicyDecision {
  double interval = 0.0;  ///< interval the clock should run at now
  bool retune = false;    ///< true when the clock should be re-armed
};

/// Pluggable set-point controller for the rejuvenation clock. The monitor
/// controller feeds it the currently applied interval plus the model's
/// freshly re-solved optimum; the policy decides whether the clock moves.
/// Implementations must be deterministic pure functions of their inputs.
class RejuvenationPolicy {
 public:
  virtual ~RejuvenationPolicy() = default;

  virtual PolicyDecision decide(double current_interval,
                                double optimal_interval) = 0;

  virtual std::string name() const = 0;
};

/// Baseline: never touches the clock (the paper's offline static interval).
/// Keeping it as a Policy lets the adaptive and static arms of an
/// experiment share every other line of the control loop.
class StaticPolicy final : public RejuvenationPolicy {
 public:
  PolicyDecision decide(double current_interval,
                        double optimal_interval) override;
  std::string name() const override { return "static"; }
};

/// Hysteresis-banded set-point controller: retunes the clock to the model
/// optimum only when it has drifted out of a relative dead band around the
/// current interval, and clamps the target into [min_interval,
/// max_interval]. The band suppresses chatter from estimator noise; the
/// clamp keeps a wild early estimate from parking the clock somewhere
/// pathological.
class HysteresisPolicy final : public RejuvenationPolicy {
 public:
  struct Config {
    double band = 0.15;  ///< relative dead band around the current value
    double min_interval = 30.0;
    double max_interval = 10000.0;
  };

  explicit HysteresisPolicy(const Config& config);

  PolicyDecision decide(double current_interval,
                        double optimal_interval) override;
  std::string name() const override { return "hysteresis"; }

  const Config& config() const { return config_; }

 private:
  Config config_;
};

/// Factory for the CLI/daemon policy knob ("static" | "hysteresis").
/// Throws fault::Error (kInvalidArgument) on an unknown name.
std::unique_ptr<RejuvenationPolicy> make_policy(
    const std::string& name, const HysteresisPolicy::Config& hysteresis);

}  // namespace nvp::monitor
