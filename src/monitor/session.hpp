#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/params.hpp"
#include "src/monitor/controller.hpp"
#include "src/perception/system.hpp"

namespace nvp::monitor {

/// A drifting-attack scenario script: how the true compromise rate λc(t)
/// moves during a session, expressed as a multiplier on the nominal rate.
/// Realized as piecewise-constant attack windows on the Monte-Carlo
/// perception system (overlap-free, so multipliers are absolute).
struct DriftSchedule {
  enum class Kind { kStep, kRamp, kSinusoid };

  Kind kind = Kind::kStep;
  double multiplier = 8.0;  ///< peak λc multiplier (≥ 1)
  /// Sinusoid period; for step/ramp, the onset time of the drift (the
  /// step fires at `period`, the ramp rises over [period, 2·period]).
  double period = 60000.0;
  double segment = 2000.0;  ///< piecewise-constant segment width

  /// True multiplier at time `t` (the reference the estimator chases).
  double multiplier_at(double t) const;

  static Kind parse_kind(const std::string& name);  ///< throws fault::Error
  static const char* kind_name(Kind kind);
};

/// Expands a schedule into non-overlapping attack windows over
/// [0, duration] (segments with multiplier ≈ 1 are skipped).
std::vector<perception::FaultInjector::AttackWindow> make_drift_windows(
    const DriftSchedule& schedule, double duration);

/// One controlled monitor session: perception campaign + control loop.
struct SessionConfig {
  core::SystemParameters params;  ///< nominal model (paper defaults)
  DriftSchedule schedule;
  double duration = 200000.0;
  double frame_interval = 1.0;
  std::uint64_t seed = 1;
  std::string policy = "hysteresis";  ///< "hysteresis" | "static"
  HysteresisPolicy::Config hysteresis{};
  MonitorController::Config controller{};
};

struct SessionResult {
  perception::CampaignResult campaign;
  std::vector<ControlRecord> records;
  std::uint64_t updates = 0;
  std::uint64_t resolves = 0;
  std::uint64_t retunes = 0;
  std::uint64_t degraded_updates = 0;
  std::uint64_t detections = 0;
  double final_interval = 0.0;
  double mean_interval = 0.0;  ///< time-weighted mean applied interval
  double reliability = 0.0;    ///< campaign paper_reliability()
};

/// Runs a closed-loop session: the Monte-Carlo perception system plays
/// production traffic under the drifting-attack schedule, the controller
/// estimates (λc, p′) from the verdict stream, re-solves through the
/// staged rates-only path, and steers the rejuvenation clock per the
/// policy. Deterministic for a fixed (config, seed) at any --jobs.
SessionResult run_monitor_session(const core::Engine& engine,
                                  const SessionConfig& config);

/// Open-loop reference arm: the same campaign at a fixed rejuvenation
/// interval, no controller (what the paper's offline choice would do under
/// this drift). Used by benches/tests to find the best static interval.
perception::CampaignResult run_static_campaign(const SessionConfig& config,
                                               double interval);

}  // namespace nvp::monitor
