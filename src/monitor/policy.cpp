#include "src/monitor/policy.hpp"

#include <algorithm>
#include <cmath>

#include "src/fault/error.hpp"
#include "src/util/contracts.hpp"

namespace nvp::monitor {

PolicyDecision StaticPolicy::decide(double current_interval,
                                    double optimal_interval) {
  (void)optimal_interval;
  return PolicyDecision{current_interval, false};
}

HysteresisPolicy::HysteresisPolicy(const Config& config) : config_(config) {
  NVP_EXPECTS(config.band >= 0.0);
  NVP_EXPECTS(config.min_interval > 0.0);
  NVP_EXPECTS(config.max_interval >= config.min_interval);
}

PolicyDecision HysteresisPolicy::decide(double current_interval,
                                        double optimal_interval) {
  const double target = std::clamp(optimal_interval, config_.min_interval,
                                   config_.max_interval);
  const double drift =
      std::abs(target - current_interval) / std::max(current_interval, 1e-9);
  if (drift <= config_.band) return PolicyDecision{current_interval, false};
  return PolicyDecision{target, true};
}

std::unique_ptr<RejuvenationPolicy> make_policy(
    const std::string& name, const HysteresisPolicy::Config& hysteresis) {
  if (name == "static") return std::make_unique<StaticPolicy>();
  if (name == "hysteresis")
    return std::make_unique<HysteresisPolicy>(hysteresis);
  fault::Context context;
  context.site = "monitor.policy";
  throw fault::Error(fault::Category::kInvalidModel,
                     "unknown rejuvenation policy '" + name +
                         "' (expected static|hysteresis)",
                     std::move(context));
}

}  // namespace nvp::monitor
