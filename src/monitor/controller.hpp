#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/params.hpp"
#include "src/monitor/estimator.hpp"
#include "src/monitor/policy.hpp"

namespace nvp::monitor {

/// One row of the monitor's control log: the estimates at the update, the
/// re-solved optimum, and what the policy did about it. `degraded` rows are
/// the controller's error envelope — the re-solve failed, the controller
/// kept the last-good target, and `error` holds the failure summary (value
/// columns render empty, mirroring the sweep envelope convention).
struct ControlRecord {
  double time = 0.0;
  Estimate lambda;   ///< λc estimate at this update
  Estimate p_prime;  ///< p′ estimate at this update
  double mttc_hat = 0.0;     ///< 1 / posterior-mean λc fed to the model
  double p_prime_hat = 0.0;  ///< clamped posterior-mean p′ fed to the model
  double target_interval = 0.0;   ///< model-optimal interval (last-good if degraded)
  double applied_interval = 0.0;  ///< interval the clock runs at after this update
  double expected_reliability = 0.0;  ///< E[R_sys] at the optimum (0 if degraded)
  bool retuned = false;
  bool degraded = false;
  std::string error;  ///< failure summary when degraded
};

/// Closed-loop rejuvenation controller: consumes the verdict stream through
/// a VerdictStreamEstimator, periodically re-solves the DSPN at the
/// estimated (λc, p′) point through the engine's staged rates-only path,
/// and steers the rejuvenation clock via the configured policy.
///
/// Estimates are quantized to a fixed relative grid before they reach the
/// model. That keeps the control loop deterministic in the face of
/// floating-point noise AND makes consecutive updates with statistically
/// indistinguishable estimates hit the staged/whole-result caches (and the
/// persistent store) instead of re-solving: the structure stage is shared
/// by every update (same architecture — one reachability exploration per
/// process), and repeated quantized points cost nothing at all.
///
/// Failure envelope: if the re-solve fails (all grid points degraded —
/// e.g. under fault injection), the controller falls back to the last-good
/// target and records a degraded ControlRecord instead of aborting; the
/// clock keeps running at the last applied interval.
class MonitorController {
 public:
  struct Config {
    /// Structural + nominal parameters; mttc and p_prime are overwritten
    /// by the online estimates at each update.
    core::SystemParameters params;
    double update_every = 2500.0;  ///< sim-seconds between estimate updates
    double min_events = 2.0;  ///< compromise evidence needed before acting
    double interval_lo = 60.0;   ///< optimizer search range
    double interval_hi = 3000.0;
    std::size_t grid_points = 10;
    double tolerance = 10.0;  ///< golden-section tolerance (seconds)
    /// Relative quantization step for estimates entering the model (0
    /// disables). 0.05 ≈ 5% grid: well under the credible-interval width
    /// at the evidence volumes that pass `min_events`.
    double quantization = 0.05;
    VerdictStreamEstimator::Config estimator{};
  };

  MonitorController(const core::Engine& engine, const Config& config,
                    std::unique_ptr<RejuvenationPolicy> policy);

  /// Invoked on a retune with the new interval; wire this to
  /// NVersionPerceptionSystem::set_rejuvenation_interval.
  void set_retune_callback(std::function<void(double)> callback) {
    retune_ = std::move(callback);
  }

  /// Feeds one frame of verdict traffic; runs an estimate update + re-solve
  /// when the update period has elapsed.
  void observe_frame(double time, double dt,
                     const std::vector<perception::ModuleAnswer>& answers,
                     int true_label);

  double applied_interval() const { return applied_interval_; }
  const std::vector<ControlRecord>& records() const { return records_; }
  const VerdictStreamEstimator& estimator() const { return estimator_; }

  std::uint64_t updates() const { return updates_; }
  std::uint64_t resolves() const { return resolves_; }
  std::uint64_t retunes() const { return retunes_; }
  std::uint64_t degraded_updates() const { return degraded_; }

 private:
  void update(double time);

  /// Rounds `value` onto the controller's relative grid (log-spaced steps
  /// of `quantization`), so near-identical estimates share a cache key.
  double quantize(double value) const;

  const core::Engine& engine_;
  Config config_;
  std::unique_ptr<RejuvenationPolicy> policy_;
  VerdictStreamEstimator estimator_;
  std::function<void(double)> retune_;
  std::vector<ControlRecord> records_;
  double applied_interval_ = 0.0;
  double last_good_target_ = 0.0;
  double next_update_ = 0.0;
  std::uint64_t updates_ = 0;
  std::uint64_t resolves_ = 0;
  std::uint64_t retunes_ = 0;
  std::uint64_t degraded_ = 0;
};

}  // namespace nvp::monitor
