#include "src/monitor/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/fault/error.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/contracts.hpp"

namespace nvp::monitor {

namespace {
obs::Counter& updates_total() {
  static obs::Counter& c = obs::Registry::global().counter("monitor.updates");
  return c;
}
obs::Counter& resolves_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("monitor.resolves");
  return c;
}
obs::Counter& retunes_total() {
  static obs::Counter& c = obs::Registry::global().counter("monitor.retunes");
  return c;
}
obs::Counter& degraded_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("monitor.degraded");
  return c;
}
obs::Histogram& resolve_seconds() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("monitor.resolve_s");
  return h;
}
}  // namespace

namespace {
/// The estimator's exposure model must match the transition semantics of
/// the model being re-solved, or λ̂c lands on the wrong scale entirely
/// (a single-server system observed per-module reads ~n× too slow).
VerdictStreamEstimator::Config estimator_config(
    const MonitorController::Config& config) {
  VerdictStreamEstimator::Config adjusted = config.estimator;
  adjusted.semantics = config.params.semantics;
  return adjusted;
}
}  // namespace

MonitorController::MonitorController(
    const core::Engine& engine, const Config& config,
    std::unique_ptr<RejuvenationPolicy> policy)
    : engine_(engine),
      config_(config),
      policy_(std::move(policy)),
      estimator_(config.params.n_versions, estimator_config(config)),
      applied_interval_(config.params.rejuvenation_interval),
      last_good_target_(config.params.rejuvenation_interval),
      next_update_(config.update_every) {
  NVP_EXPECTS(policy_ != nullptr);
  NVP_EXPECTS(config.update_every > 0.0);
  NVP_EXPECTS(config.interval_lo > 0.0);
  NVP_EXPECTS(config.interval_hi > config.interval_lo);
  NVP_EXPECTS(config.quantization >= 0.0);
}

void MonitorController::observe_frame(
    double time, double dt,
    const std::vector<perception::ModuleAnswer>& answers, int true_label) {
  estimator_.observe_frame(time, dt, answers, true_label);
  if (time >= next_update_) {
    update(time);
    // One update per period even if frames stalled past several periods.
    next_update_ +=
        std::ceil((time - next_update_) / config_.update_every + 1e-12) *
        config_.update_every;
    if (next_update_ <= time) next_update_ += config_.update_every;
  }
}

double MonitorController::quantize(double value) const {
  if (config_.quantization <= 0.0 || value <= 0.0) return value;
  const double step = std::log1p(config_.quantization);
  return std::exp(std::round(std::log(value) / step) * step);
}

void MonitorController::update(double time) {
  ++updates_;
  updates_total().add();
  ControlRecord record;
  record.time = time;
  record.lambda = estimator_.lambda();
  record.p_prime = estimator_.p_prime();
  record.applied_interval = applied_interval_;
  record.target_interval = last_good_target_;

  // Insufficient evidence: report the estimates but leave the clock alone
  // (the nominal configuration is still the best belief).
  if (record.lambda.events < config_.min_events) {
    records_.push_back(record);
    return;
  }

  // Point estimates entering the model: posterior means (regularized by
  // the conjugate prior), quantized onto the cache-friendly grid.
  const double lambda_hat =
      std::max(record.lambda.mean, 1e-9);  // guard the 1/λ inversion
  record.mttc_hat = quantize(1.0 / lambda_hat);
  record.p_prime_hat =
      std::clamp(quantize(record.p_prime.mean), 0.01, 0.99);

  core::SystemParameters estimated = config_.params;
  estimated.mean_time_to_compromise = record.mttc_hat;
  estimated.p_prime = record.p_prime_hat;

  try {
    obs::ScopedSpan span("monitor.resolve");
    const auto t0 = std::chrono::steady_clock::now();
    const core::Optimum opt = engine_.optimize_rejuvenation_interval(
        estimated, config_.interval_lo, config_.interval_hi,
        config_.grid_points, config_.tolerance);
    resolve_seconds().observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    ++resolves_;
    resolves_total().add();
    record.target_interval = opt.x;
    record.expected_reliability = opt.expected_reliability;
    last_good_target_ = opt.x;
  } catch (const std::exception& e) {
    // Every grid point failed (e.g. under fault injection): degrade to the
    // last-good target instead of aborting the session.
    ++degraded_;
    degraded_total().add();
    record.degraded = true;
    record.error = fault::ErrorInfo::from(e).summary();
    record.target_interval = last_good_target_;
  }

  const PolicyDecision decision =
      policy_->decide(applied_interval_, record.target_interval);
  if (decision.retune && decision.interval != applied_interval_) {
    applied_interval_ = decision.interval;
    ++retunes_;
    retunes_total().add();
    record.retuned = true;
    if (retune_) retune_(applied_interval_);
  }
  record.applied_interval = applied_interval_;
  records_.push_back(record);
}

}  // namespace nvp::monitor
