#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/params.hpp"
#include "src/perception/module_sim.hpp"

namespace nvp::monitor {

/// One online estimate of a drifting quantity: the windowed MLE, the
/// conjugate-posterior mean, and a central 95% credible interval. `events`
/// and `exposure` are the raw windowed counts backing it, so callers can
/// gate decisions on evidence volume instead of trusting a prior-dominated
/// posterior.
struct Estimate {
  double mle = 0.0;
  double mean = 0.0;
  double lo95 = 0.0;
  double hi95 = 0.0;
  double events = 0.0;
  double exposure = 0.0;
};

/// Sliding-window estimator of a Poisson event rate λ (events per unit of
/// exposure). Observations are accumulated into fixed-width exposure
/// buckets; buckets older than `window` are dropped, so the estimate tracks
/// drift with a bounded memory. The windowed MLE is k/T; the Bayesian
/// estimate is the conjugate Gamma(a0 + k, b0 + T) posterior, whose
/// quantiles are computed with the Wilson–Hilferty approximation (exact
/// enough for interval reporting, and free of special-function code).
///
/// Fully deterministic: no RNG, no clocks — the same observation sequence
/// always yields the same estimates.
class RateEstimator {
 public:
  struct Config {
    double window = 20000.0;  ///< seconds of history retained
    double bucket = 500.0;    ///< accumulation bucket width (seconds)
    double prior_shape = 1.0;       ///< Gamma a0 (pseudo-events)
    double prior_exposure = 500.0;  ///< Gamma b0 (pseudo-exposure)
  };

  explicit RateEstimator(const Config& config);

  /// Records `events` occurrences over `exposure` additional units observed
  /// at simulation time `time` (monotone non-decreasing across calls).
  void observe(double time, double events, double exposure);

  Estimate estimate() const;

 private:
  struct Bucket {
    std::int64_t index = 0;
    double events = 0.0;
    double exposure = 0.0;
  };

  void evict(std::int64_t newest);

  Config config_;
  std::deque<Bucket> buckets_;
};

/// Sliding-window estimator of a Bernoulli probability (per-trial error
/// rate p′). Same bucketing discipline as RateEstimator; the Bayesian
/// estimate is the conjugate Beta(a0 + errors, b0 + trials - errors)
/// posterior with a normal-approximation credible interval clamped to
/// [0, 1].
class ProbabilityEstimator {
 public:
  struct Config {
    double window = 20000.0;
    double bucket = 500.0;
    double prior_errors = 1.0;     ///< Beta a0
    double prior_successes = 1.0;  ///< Beta b0
  };

  explicit ProbabilityEstimator(const Config& config);

  void observe(double time, double errors, double trials);

  Estimate estimate() const;

 private:
  struct Bucket {
    std::int64_t index = 0;
    double errors = 0.0;
    double trials = 0.0;
  };

  void evict(std::int64_t newest);

  Config config_;
  std::deque<Bucket> buckets_;
};

/// Turns raw per-frame module verdicts into (λc, p′) observations.
///
/// The monitor sees what production would see: per frame, each module's
/// answer plus the reference label of audited traffic. It cannot observe
/// module state directly, so compromises are *detected*: each module keeps
/// a ring window of its recent answered frames; when its windowed error
/// rate crosses `flag_threshold` the module is flagged (one compromise
/// event for the λc estimator), and it is unflagged on `clear_threshold`
/// or when it goes silent (failure/rejuvenation restarts its life-cycle,
/// which is exactly the DSPN's H-state re-entry). Exposure accrual follows
/// the model's firing semantics, so λ̂c is directly comparable with
/// 1/mean_time_to_compromise: under single-server semantics (the paper's)
/// the attack transition is enabled at the system level whenever at least
/// one at-risk module exists, so exposure is Δt; under infinite-server it
/// is (answering unflagged modules) × Δt. Flagged modules' answers feed
/// the p′ estimator.
///
/// Detection latency biases λ̂c slightly low and the threshold discipline
/// can miss near-p′≈p compromises; both effects are second-order for the
/// paper's parameterization (p = 0.08 vs p′ = 0.5) and are covered by the
/// credible intervals.
class VerdictStreamEstimator {
 public:
  struct Config {
    int detector_window = 40;       ///< answered frames per module window
    int detector_min_frames = 12;   ///< evidence needed before flagging
    double flag_threshold = 0.3;    ///< windowed error rate that flags
    double clear_threshold = 0.12;  ///< windowed error rate that unflags
    /// Exposure model for the λc estimate — must match the solved model's
    /// transition semantics (see the class comment).
    core::FiringSemantics semantics = core::FiringSemantics::kSingleServer;
    RateEstimator::Config rate{};
    ProbabilityEstimator::Config probability{};
  };

  VerdictStreamEstimator(int num_modules, const Config& config);

  /// Feeds one frame: per-module answers, the reference label, and the
  /// frame timestamp. `dt` is the exposure carried by this frame (the
  /// frame interval).
  void observe_frame(double time, double dt,
                     const std::vector<perception::ModuleAnswer>& answers,
                     int true_label);

  Estimate lambda() const { return rate_.estimate(); }
  Estimate p_prime() const { return probability_.estimate(); }

  /// Modules currently flagged as compromised by the detector.
  int flagged() const;

  /// Total compromise detections since construction.
  std::uint64_t detections() const { return detections_; }

 private:
  struct ModuleWindow {
    std::deque<char> wrong;  ///< ring of recent answered frames
    int wrong_count = 0;
    bool flagged = false;

    void reset() {
      wrong.clear();
      wrong_count = 0;
    }
  };

  Config config_;
  std::vector<ModuleWindow> modules_;
  RateEstimator rate_;
  ProbabilityEstimator probability_;
  std::uint64_t detections_ = 0;
};

}  // namespace nvp::monitor
