#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace nvp::obs {

/// Everything needed to reproduce and audit one invocation: what ran, with
/// which inputs, on which build, and where the time and probability mass
/// went. One JSON document per run (the CLI's --metrics-json output).
struct RunManifest {
  std::string tool;             ///< binary name ("nvpcli", bench id, ...)
  std::string command;          ///< reconstructed command line
  std::map<std::string, std::string> params;  ///< input provenance (stringly)
  std::uint64_t seed = 0;       ///< 0 = no stochastic component
  std::size_t jobs = 0;         ///< worker threads used (0 = default pool)

  /// Captured automatically by capture(): build + process facts.
  std::string git_sha;
  std::string timestamp_utc;
  long peak_rss_bytes = 0;

  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;

  /// Fills git_sha/timestamp/peak RSS and snapshots the global metrics
  /// registry and trace recorder into this manifest.
  void capture();

  /// The manifest as a JSON document.
  std::string to_json() const;

  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;
};

/// Peak resident set size of this process in bytes (getrusage).
long peak_rss_bytes();

/// Git SHA the binary was built from (CMake-injected; "unknown" outside a
/// git checkout).
const char* build_git_sha();

}  // namespace nvp::obs
