#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nvp::obs {

/// Streaming JSON writer: no DOM, no allocation beyond the output string.
/// The caller drives the structure (begin/end object/array, key, value);
/// commas are inserted automatically. Doubles are emitted with round-trip
/// precision; NaN/Inf (not representable in JSON) become null.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    return key(name).value(v);
  }

  /// The document built so far. Valid JSON once every container is closed.
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view raw);

 private:
  void comma();

  std::string out_;
  std::vector<bool> need_comma_;  // per open container
  bool after_key_ = false;
};

/// Minimal structural validator (objects/arrays/strings/numbers/literals,
/// UTF-8 passthrough). Used by tests to round-trip manifests without a JSON
/// dependency; not a full RFC 8259 parser.
bool json_is_valid(std::string_view text);

}  // namespace nvp::obs
