#include "src/obs/trace.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <map>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/string_util.hpp"

namespace nvp::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_next_span_id{1};
thread_local std::uint64_t t_current_span = 0;

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_tracing(bool on) noexcept {
  g_tracing.store(on, std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* instance = new TraceRecorder();  // never destroyed
  return *instance;
}

void TraceRecorder::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::chrono::steady_clock::time_point TraceRecorder::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!tracing_enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  name_ = name;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_s_ = thread_cpu_seconds();
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  const auto wall_end = std::chrono::steady_clock::now();
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.thread = detail::thread_slot();
  record.start_s =
      std::chrono::duration<double>(wall_start_ -
                                    TraceRecorder::global().epoch())
          .count();
  record.wall_s =
      std::chrono::duration<double>(wall_end - wall_start_).count();
  record.cpu_s = thread_cpu_seconds() - cpu_start_s_;
  t_current_span = parent_;
  TraceRecorder::global().record(std::move(record));
}

namespace {

/// Children grouped by parent id, in creation (id) order.
std::map<std::uint64_t, std::vector<const SpanRecord*>> children_by_parent(
    const std::vector<SpanRecord>& records) {
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& r : records) children[r.parent].push_back(&r);
  for (auto& [_, group] : children)
    std::sort(group.begin(), group.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->id < b->id;
              });
  return children;
}

void emit_span_json(
    const SpanRecord& span,
    const std::map<std::uint64_t, std::vector<const SpanRecord*>>& children,
    JsonWriter& json) {
  json.begin_object();
  json.kv("name", span.name);
  json.kv("thread", std::uint64_t(span.thread));
  json.kv("start_s", span.start_s);
  json.kv("wall_s", span.wall_s);
  json.kv("cpu_s", span.cpu_s);
  json.key("children").begin_array();
  auto it = children.find(span.id);
  if (it != children.end())
    for (const SpanRecord* child : it->second)
      emit_span_json(*child, children, json);
  json.end_array();
  json.end_object();
}

void emit_span_text(
    const SpanRecord& span,
    const std::map<std::uint64_t, std::vector<const SpanRecord*>>& children,
    int depth, std::string& out) {
  out += util::format("%*s%s  wall=%.3fms cpu=%.3fms thread=%zu\n", depth * 2,
                      "", span.name.c_str(), span.wall_s * 1e3,
                      span.cpu_s * 1e3, span.thread);
  auto it = children.find(span.id);
  if (it != children.end())
    for (const SpanRecord* child : it->second)
      emit_span_text(*child, children, depth + 1, out);
}

/// Roots: spans whose parent id is 0 or refers to a span that never finished
/// (e.g. the enclosing span is still live when the tree is rendered).
std::vector<const SpanRecord*> roots_of(
    const std::vector<SpanRecord>& records) {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& r : records) by_id[r.id] = &r;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& r : records)
    if (r.parent == 0 || by_id.find(r.parent) == by_id.end())
      roots.push_back(&r);
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->id < b->id;
            });
  return roots;
}

}  // namespace

std::string span_tree_json(const std::vector<SpanRecord>& records) {
  JsonWriter json;
  span_tree_json(records, json);
  return json.str();
}

void span_tree_json(const std::vector<SpanRecord>& records,
                    JsonWriter& json) {
  const auto children = children_by_parent(records);
  json.begin_array();
  for (const SpanRecord* root : roots_of(records))
    emit_span_json(*root, children, json);
  json.end_array();
}

std::string span_tree_text(const std::vector<SpanRecord>& records) {
  const auto children = children_by_parent(records);
  std::string out;
  for (const SpanRecord* root : roots_of(records))
    emit_span_text(*root, children, 0, out);
  return out;
}

}  // namespace nvp::obs
