#include "src/obs/metrics.hpp"

#include <cstdlib>

namespace nvp::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::string init_from_env() {
  const char* env = std::getenv("NVP_METRICS");
  if (env == nullptr) return {};
  const std::string value = env;
  if (value == "0" || value == "off" || value == "false")
    set_enabled(false);
  else
    set_enabled(true);
  return value;
}

namespace detail {

std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

HistogramSnapshot Histogram::snapshot() const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  HistogramSnapshot out;
  for (const Slot& slot : slots_) {
    for (std::size_t i = 0; i < kBuckets; ++i)
      counts[i] += slot.counts[i].load(std::memory_order_relaxed);
    out.sum += slot.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : counts) out.count += c;
  if (out.count == 0) return out;
  auto quantile = [&](double q) {
    const auto target =
        static_cast<std::uint64_t>(std::ceil(q * double(out.count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= target && counts[i] > 0) return bucket_bound(i);
    }
    return bucket_bound(kBuckets - 1);
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: metrics
  return *instance;  // outlive static caches that report into them at exit
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_)
    out.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) out.gauges[name] = gauge->value();
  for (const auto& [name, histogram] : histograms_)
    out.histograms[name] = histogram->snapshot();
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [_, counter] : counters_) counter->reset();
  for (const auto& [_, gauge] : gauges_) gauge->reset();
  for (const auto& [_, histogram] : histograms_) histogram->reset();
}

}  // namespace nvp::obs
