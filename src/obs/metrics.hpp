#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nvp::obs {

/// Process-wide metrics switch. Collection is *on* by default: every
/// recording primitive below is a relaxed atomic on a per-thread shard, so
/// the enabled cost is already negligible; the switch exists so perf-critical
/// batch runs can drop even that (one relaxed load + branch per call site).
/// Controlled by `NVP_METRICS` (0/off disables) and obs::set_enabled().
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Reads NVP_METRICS once and applies it: unset or any value other than
/// "0"/"off"/"false" leaves metrics enabled. Returns the env value (empty if
/// unset) so CLIs can also treat a path-looking value as a manifest target.
std::string init_from_env();

namespace detail {
/// Dense small integer id of the calling thread, assigned on first use.
/// Metrics mod it by their shard count; after kSlots distinct threads the
/// shards are shared (still correct — they are atomics).
std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter, sharded per thread so concurrent add() calls from the
/// solver pool never contend on one cache line.
class Counter {
 public:
  static constexpr std::size_t kSlots = 32;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    slots_[detail::thread_slot() % kSlots].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kSlots> slots_{};
};

/// Last-write-wins instantaneous value (pool size, state-space size, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean() const { return count > 0 ? sum / double(count) : 0.0; }
  /// Upper bucket bound below which at least q of the mass lies (power-of-2
  /// resolution — a scale estimate, not an exact order statistic).
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Lock-free histogram over power-of-2 buckets spanning [2^-20, 2^20)
/// (covers microseconds to days when observing seconds, and 1..1M when
/// observing counts). Values outside the range clamp to the edge buckets.
/// Per-thread sharded like Counter; sum is exact, quantiles are bucketed.
class Histogram {
 public:
  static constexpr int kMinExp = -20;
  static constexpr std::size_t kBuckets = 41;
  static constexpr std::size_t kSlots = 16;

  void observe(double v) noexcept {
    if (!enabled()) return;
    Slot& slot = slots_[detail::thread_slot() % kSlots];
    slot.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept;

  void reset() noexcept {
    for (Slot& s : slots_) {
      for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
      s.sum.store(0.0, std::memory_order_relaxed);
    }
  }

  /// Inclusive upper value bound of bucket i.
  static double bucket_bound(std::size_t i) noexcept {
    return std::ldexp(1.0, kMinExp + static_cast<int>(i));
  }

  static std::size_t bucket_of(double v) noexcept {
    if (!(v > 0.0)) return 0;
    const int e = std::ilogb(v) + 1;  // v <= 2^e
    const int i = e - kMinExp;
    if (i < 0) return 0;
    if (i >= static_cast<int>(kBuckets)) return kBuckets - 1;
    return static_cast<std::size_t>(i);
  }

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<double> sum{0.0};
  };
  std::array<Slot, kSlots> slots_{};
};

/// Everything the registry held at one instant.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> metric map. Lookup takes a mutex (do it once per call site and
/// keep the reference — metrics are never removed, so references stay valid
/// for the process lifetime); recording is lock-free.
class Registry {
 public:
  /// The process-wide registry every subsystem reports into.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (benchmark phases, tests).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace nvp::obs
