#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace nvp::obs {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.empty()) return;
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += escape(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += escape(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out += '"';
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

/// Recursive-descent structural check over `text[pos..]`.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (depth_ > 256 || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;  // accept any escape payload; \uXXXX hex not re-checked
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::size_t digit = text_[start] == '-' ? start + 1 : start;
    return pos_ > digit && digit < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[digit]));
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_is_valid(std::string_view text) { return Validator(text).run(); }

}  // namespace nvp::obs
