#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nvp::obs {

/// Process-wide tracing switch. Off by default: spans allocate and take a
/// recorder lock on scope exit, which is cheap per solver call but not free.
/// A disabled ScopedSpan is one relaxed load + branch.
bool tracing_enabled() noexcept;
void set_tracing(bool on) noexcept;

/// One finished span. Ids are process-unique and increase in creation order;
/// `parent == 0` marks a root (no enclosing span on the creating thread).
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::size_t thread = 0;  ///< obs::detail::thread_slot() of the creator
  double start_s = 0.0;    ///< wall offset from the recorder epoch
  double wall_s = 0.0;     ///< wall-clock duration
  double cpu_s = 0.0;      ///< thread CPU time consumed inside the span
};

/// Collects finished spans. Spans self-register on destruction; parents on
/// the same thread are linked automatically through a thread-local stack.
class TraceRecorder {
 public:
  static TraceRecorder& global();

  void record(SpanRecord record);

  /// All spans finished so far, in completion order.
  std::vector<SpanRecord> finished() const;

  void clear();

  /// Wall-clock epoch that span start offsets are relative to (recorder
  /// construction / last clear()).
  std::chrono::steady_clock::time_point epoch() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// RAII span: times the enclosing scope (wall + thread CPU) and records it
/// on destruction, parented to the innermost live span of the same thread.
/// When tracing is disabled at construction the span is inert (and stays
/// inert even if tracing is switched on mid-scope).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Id of this span (0 when tracing was disabled at construction).
  std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_{};
  double cpu_start_s_ = 0.0;
};

class JsonWriter;

/// Nested-JSON rendering of the span forest: an array of root span objects,
/// each with {name, thread, start_s, wall_s, cpu_s, children: [...]}.
std::string span_tree_json(const std::vector<SpanRecord>& records);

/// Same, emitted as an array value into an in-progress JSON document.
void span_tree_json(const std::vector<SpanRecord>& records, JsonWriter& json);

/// Indented text rendering of the span forest (the CLI's --trace output).
std::string span_tree_text(const std::vector<SpanRecord>& records);

}  // namespace nvp::obs
