#include "src/obs/manifest.hpp"

#include <sys/resource.h>

#include <ctime>
#include <fstream>
#include <stdexcept>

#include "src/obs/json.hpp"

#ifndef NVP_GIT_SHA
#define NVP_GIT_SHA "unknown"
#endif

namespace nvp::obs {

long peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss * 1024L;  // ru_maxrss is KiB on Linux
}

const char* build_git_sha() { return NVP_GIT_SHA; }

void RunManifest::capture() {
  git_sha = build_git_sha();
  peak_rss_bytes = obs::peak_rss_bytes();
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  timestamp_utc = buf;
  metrics = Registry::global().snapshot();
  spans = TraceRecorder::global().finished();
}

std::string RunManifest::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.kv("tool", tool);
  json.kv("command", command);
  json.kv("git_sha", git_sha);
  json.kv("timestamp_utc", timestamp_utc);
  json.kv("seed", seed);
  json.kv("jobs", std::uint64_t(jobs));
  json.kv("peak_rss_bytes", std::int64_t(peak_rss_bytes));

  json.key("params").begin_object();
  for (const auto& [name, value] : params) json.kv(name, value);
  json.end_object();

  json.key("metrics").begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) json.kv(name, value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) json.kv(name, value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : metrics.histograms) {
    json.key(name).begin_object();
    json.kv("count", h.count);
    json.kv("sum", h.sum);
    json.kv("mean", h.mean());
    json.kv("p50", h.p50);
    json.kv("p90", h.p90);
    json.kv("p99", h.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();

  json.key("spans");
  span_tree_json(spans, json);
  json.end_object();
  return json.str();
}

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open manifest file: " + path);
  out << to_json() << "\n";
  if (!out) throw std::runtime_error("failed writing manifest: " + path);
}

}  // namespace nvp::obs
