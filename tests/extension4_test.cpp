// Tests for the fourth extension wave: Erlangized clocks and the
// threat-adaptive rejuvenation controller.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/model_factory.hpp"
#include "src/core/reliability.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/transient.hpp"
#include "src/perception/adaptive.hpp"
#include "src/perception/system.hpp"
#include "src/petri/reachability.hpp"
#include "src/util/contracts.hpp"

namespace nvp {
namespace {

using core::SystemParameters;

double expected_reliability(const core::BuiltModel& model,
                            const petri::TangibleReachabilityGraph& g,
                            const linalg::Vector& pi,
                            const core::ReliabilityModel& rewards) {
  double out = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s) {
    const auto& m = g.marking(s);
    const int k = model.down(m);
    out += pi[s] * (k > 0 ? 0.0
                          : rewards.state_reliability(
                                model.healthy(m), model.compromised(m), k));
  }
  return out;
}

// ---- Erlangization ------------------------------------------------------------

TEST(Erlangization, ModelIsPureCtmc) {
  const auto model = core::PerceptionModelFactory::with_rejuvenation_erlang(
      SystemParameters::paper_six_version(), 4);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  EXPECT_FALSE(g.has_deterministic());
}

TEST(Erlangization, ConvergesToMrgpSolution) {
  const auto params = SystemParameters::paper_six_version();
  const core::PaperSixVersionReliability rewards(params.p, params.p_prime,
                                                 params.alpha);
  const auto det = core::PerceptionModelFactory::build(params);
  const auto g_det = petri::TangibleReachabilityGraph::build(det.net);
  const auto pi_det = markov::DspnSteadyStateSolver().solve(g_det);
  const double reference =
      expected_reliability(det, g_det, pi_det.probabilities, rewards);

  double previous_gap = 1.0;
  for (int stages : {2, 4, 8, 16}) {
    const auto model =
        core::PerceptionModelFactory::with_rejuvenation_erlang(params,
                                                               stages);
    const auto g = petri::TangibleReachabilityGraph::build(model.net);
    const auto pi =
        markov::ctmc_steady_state(markov::Ctmc::from_graph(g).generator);
    const double gap =
        std::fabs(expected_reliability(model, g, pi, rewards) - reference);
    EXPECT_LT(gap, previous_gap) << "stages " << stages;
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 3e-4);  // Erlang-16 is already very close
}

TEST(Erlangization, ModuleTokensStillConserved) {
  const auto model = core::PerceptionModelFactory::with_rejuvenation_erlang(
      SystemParameters::paper_six_version(), 3);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  for (std::size_t s = 0; s < g.size(); ++s) {
    const auto& m = g.marking(s);
    EXPECT_EQ(model.healthy(m) + model.compromised(m) + model.down(m), 6);
  }
}

TEST(Erlangization, EnablesAnalyticTransients) {
  // The whole point: uniformization applies. E[R(t)] at t = 0 equals the
  // all-healthy reward, and at large t the stationary value.
  const auto params = SystemParameters::paper_six_version();
  const auto model = core::PerceptionModelFactory::with_rejuvenation_erlang(
      params, 8);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  const auto chain = markov::Ctmc::from_graph(g);
  const core::PaperSixVersionReliability rewards(params.p, params.p_prime,
                                                 params.alpha);
  linalg::Vector reward(g.size());
  for (std::size_t s = 0; s < g.size(); ++s) {
    const auto& m = g.marking(s);
    const int k = model.down(m);
    reward[s] = k > 0 ? 0.0
                      : rewards.state_reliability(
                            model.healthy(m), model.compromised(m), k);
  }
  auto value_at = [&](double t) {
    const auto pi = markov::ctmc_transient(chain.generator, chain.initial, t);
    double out = 0.0;
    for (std::size_t s = 0; s < g.size(); ++s) out += pi[s] * reward[s];
    return out;
  };
  EXPECT_NEAR(value_at(0.0), 0.945, 1e-9);  // R_{6,0,0} at defaults
  const auto stationary =
      markov::ctmc_steady_state(chain.generator);
  double stat_value = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s)
    stat_value += stationary[s] * reward[s];
  // t = 3e4 s is ~10 mixing times of the slowest life-cycle
  // timescale; keep the horizon moderate so the uniformization
  // series stays short.
  EXPECT_NEAR(value_at(3.0e4), stat_value, 2e-4);
}

TEST(Erlangization, RejectsBadStageCount) {
  EXPECT_THROW(core::PerceptionModelFactory::with_rejuvenation_erlang(
                   SystemParameters::paper_six_version(), 0),
               util::ContractViolation);
}

// ---- adaptive controller --------------------------------------------------------

perception::AdaptiveIntervalController::Config small_window() {
  perception::AdaptiveIntervalController::Config cfg;
  cfg.window_frames = 10;
  cfg.initial_interval = 600.0;
  cfg.min_interval = 75.0;
  cfg.max_interval = 1200.0;
  cfg.relax_step = 100.0;
  cfg.suspicion_threshold = 0.3;
  return cfg;
}

TEST(AdaptiveController, TightensUnderSuspicion) {
  perception::AdaptiveIntervalController controller(small_window());
  bool changed = false;
  for (int i = 0; i < 10; ++i) changed |= controller.record_verdict(true);
  EXPECT_TRUE(changed);
  EXPECT_DOUBLE_EQ(controller.current_interval(), 300.0);
  EXPECT_EQ(controller.tightenings(), 1u);
  // Keeps halving down to the floor.
  for (int w = 0; w < 10; ++w)
    for (int i = 0; i < 10; ++i) controller.record_verdict(true);
  EXPECT_DOUBLE_EQ(controller.current_interval(), 75.0);
}

TEST(AdaptiveController, RelaxesWhenCalm) {
  perception::AdaptiveIntervalController controller(small_window());
  for (int i = 0; i < 10; ++i) controller.record_verdict(false);
  EXPECT_DOUBLE_EQ(controller.current_interval(), 700.0);
  EXPECT_EQ(controller.relaxations(), 1u);
  for (int w = 0; w < 20; ++w)
    for (int i = 0; i < 10; ++i) controller.record_verdict(false);
  EXPECT_DOUBLE_EQ(controller.current_interval(), 1200.0);  // capped
}

TEST(AdaptiveController, ThresholdIsaBoundary) {
  perception::AdaptiveIntervalController controller(small_window());
  // 2/10 suspicious < 0.3: relax.
  for (int i = 0; i < 10; ++i) controller.record_verdict(i < 2);
  EXPECT_GT(controller.current_interval(), 600.0);
  // 3/10 suspicious >= 0.3: tighten.
  perception::AdaptiveIntervalController controller2(small_window());
  for (int i = 0; i < 10; ++i) controller2.record_verdict(i < 3);
  EXPECT_LT(controller2.current_interval(), 600.0);
}

TEST(AdaptiveController, NoDecisionMidWindow) {
  perception::AdaptiveIntervalController controller(small_window());
  for (int i = 0; i < 9; ++i)
    EXPECT_FALSE(controller.record_verdict(true));
  EXPECT_DOUBLE_EQ(controller.current_interval(), 600.0);
}

TEST(AdaptiveController, ValidatesConfig) {
  auto cfg = small_window();
  cfg.min_interval = 0.0;
  EXPECT_THROW(perception::AdaptiveIntervalController{cfg},
               util::ContractViolation);
  cfg = small_window();
  cfg.initial_interval = 5000.0;  // above max
  EXPECT_THROW(perception::AdaptiveIntervalController{cfg},
               util::ContractViolation);
}

// ---- adaptive system integration -------------------------------------------------

TEST(AdaptiveSystem, RequiresRejuvenatingModel) {
  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = SystemParameters::paper_four_version();
  cfg.adaptive_rejuvenation = true;
  EXPECT_THROW(perception::NVersionPerceptionSystem{cfg},
               util::ContractViolation);
}

TEST(AdaptiveSystem, ControllerIsActiveAndHelpsUnderAttack) {
  auto run_campaign = [](bool adaptive) {
    perception::NVersionPerceptionSystem::Config cfg;
    cfg.params = SystemParameters::paper_six_version();
    cfg.params.p_prime = 0.8;
    cfg.adaptive_rejuvenation = adaptive;
    cfg.seed = 15;
    cfg.frame_interval = 1.0;
    perception::NVersionPerceptionSystem system(cfg);
    system.add_attack_window({1000.0, 4.0e5, 10.0});
    const auto result = system.run(4.0e5);
    if (adaptive) {
      EXPECT_NE(system.adaptive_controller(), nullptr);
      EXPECT_GT(system.adaptive_controller()->tightenings(), 0u);
    }
    return result.paper_reliability();
  };
  EXPECT_GT(run_campaign(true), run_campaign(false));
}

TEST(AdaptiveSystem, RejuvenatorIntervalRetunes) {
  perception::TimedRejuvenator rejuvenator({true, 600.0, 3.0, 1}, 1);
  EXPECT_DOUBLE_EQ(rejuvenator.next_clock_tick(), 600.0);
  rejuvenator.set_interval(100.0, 50.0);
  EXPECT_DOUBLE_EQ(rejuvenator.interval(), 100.0);
  EXPECT_DOUBLE_EQ(rejuvenator.next_clock_tick(), 150.0);  // pulled in
  // Lengthening does not push out an armed expiry.
  rejuvenator.set_interval(5000.0, 50.0);
  EXPECT_DOUBLE_EQ(rejuvenator.next_clock_tick(), 150.0);
}

}  // namespace
}  // namespace nvp
