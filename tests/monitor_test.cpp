// Tier-1 coverage of src/monitor/: online estimators on synthetic streams
// with known ground truth, the hysteresis policy oracle, staged re-solve
// bit-identity, determinism across job counts, and the end-to-end drift
// session where adaptive control must not lose to the best static interval.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/staged.hpp"
#include "src/monitor/controller.hpp"
#include "src/monitor/estimator.hpp"
#include "src/monitor/policy.hpp"
#include "src/monitor/session.hpp"
#include "src/obs/metrics.hpp"
#include "src/runtime/thread_pool.hpp"

namespace nvp {
namespace {

TEST(RateEstimator, MleMatchesKnownRateAndIntervalCovers) {
  monitor::RateEstimator::Config config;
  config.window = 20000.0;
  config.bucket = 500.0;
  monitor::RateEstimator est(config);
  // Known λ = 0.004 events per unit exposure, fed exactly.
  const double lambda = 0.004;
  for (double t = 0.0; t < 20000.0; t += 500.0)
    est.observe(t, lambda * 500.0, 500.0);
  const monitor::Estimate e = est.estimate();
  EXPECT_NEAR(e.mle, lambda, 1e-12);
  EXPECT_NEAR(e.mean, lambda, 0.2 * lambda);  // prior shrinks it slightly
  EXPECT_LT(e.lo95, lambda);
  EXPECT_GT(e.hi95, lambda);
  EXPECT_GT(e.exposure, 0.0);
}

TEST(RateEstimator, WindowTracksDrift) {
  monitor::RateEstimator::Config config;
  config.window = 5000.0;
  config.bucket = 500.0;
  monitor::RateEstimator est(config);
  for (double t = 0.0; t < 20000.0; t += 500.0)
    est.observe(t, 0.001 * 500.0, 500.0);
  // Rate jumps 8×; after one full window only the new regime remains.
  for (double t = 20000.0; t < 40000.0; t += 500.0)
    est.observe(t, 0.008 * 500.0, 500.0);
  const monitor::Estimate e = est.estimate();
  EXPECT_NEAR(e.mle, 0.008, 1e-12);
  EXPECT_LE(e.exposure, 5000.0 + 1e-9);
}

TEST(ProbabilityEstimator, MleMatchesKnownProbabilityAndIntervalCovers) {
  monitor::ProbabilityEstimator::Config config;
  monitor::ProbabilityEstimator est(config);
  for (double t = 0.0; t < 20000.0; t += 500.0)
    est.observe(t, 25.0, 50.0);  // p = 0.5 exactly
  const monitor::Estimate e = est.estimate();
  EXPECT_NEAR(e.mle, 0.5, 1e-12);
  EXPECT_NEAR(e.mean, 0.5, 0.05);
  EXPECT_LT(e.lo95, 0.5);
  EXPECT_GT(e.hi95, 0.5);
  EXPECT_GE(e.lo95, 0.0);
  EXPECT_LE(e.hi95, 1.0);
}

/// Synthetic verdict stream: module `victim` turns compromised at frame
/// `onset` and errs on every other frame (rate 0.5 = the paper's p′).
std::vector<perception::ModuleAnswer> synthetic_frame(int n, int victim,
                                                      int frame, int onset,
                                                      int true_label) {
  std::vector<perception::ModuleAnswer> answers(
      static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    answers[static_cast<std::size_t>(m)].responded = true;
    answers[static_cast<std::size_t>(m)].label = true_label;
  }
  if (frame >= onset && frame % 2 == 0)
    answers[static_cast<std::size_t>(victim)].label = true_label + 1;
  return answers;
}

TEST(VerdictStreamEstimator, DetectsCompromiseAndEstimatesPPrime) {
  monitor::VerdictStreamEstimator::Config config;
  monitor::VerdictStreamEstimator est(6, config);
  const int onset = 1000;
  for (int frame = 0; frame < 3000; ++frame)
    est.observe_frame(static_cast<double>(frame), 1.0,
                      synthetic_frame(6, 2, frame, onset, 7), 7);
  EXPECT_EQ(est.detections(), 1u);
  EXPECT_EQ(est.flagged(), 1);
  const monitor::Estimate lambda = est.lambda();
  EXPECT_EQ(lambda.events, 1.0);
  EXPECT_GT(lambda.mle, 0.0);
  const monitor::Estimate p = est.p_prime();
  EXPECT_NEAR(p.mle, 0.5, 0.05);
  EXPECT_LT(p.lo95, 0.5);
  EXPECT_GT(p.hi95, 0.45);
}

TEST(VerdictStreamEstimator, SilenceResetsTheDetector) {
  monitor::VerdictStreamEstimator::Config config;
  monitor::VerdictStreamEstimator est(6, config);
  for (int frame = 0; frame < 200; ++frame)
    est.observe_frame(static_cast<double>(frame), 1.0,
                      synthetic_frame(6, 4, frame, 0, 3), 3);
  ASSERT_EQ(est.flagged(), 1);
  // The flagged module goes silent (rejuvenation): the flag clears and no
  // second compromise event is recorded for the same incident.
  auto answers = synthetic_frame(6, 4, 200, 0, 3);
  answers[4].responded = false;
  est.observe_frame(200.0, 1.0, answers, 3);
  EXPECT_EQ(est.flagged(), 0);
  EXPECT_EQ(est.detections(), 1u);
}

TEST(HysteresisPolicy, OracleDecisions) {
  monitor::HysteresisPolicy::Config config;
  config.band = 0.15;
  config.min_interval = 50.0;
  config.max_interval = 5000.0;
  monitor::HysteresisPolicy policy(config);

  // Inside the dead band: no retune.
  monitor::PolicyDecision d = policy.decide(600.0, 650.0);
  EXPECT_FALSE(d.retune);
  EXPECT_EQ(d.interval, 600.0);

  // Outside the band: retune to the optimum.
  d = policy.decide(600.0, 900.0);
  EXPECT_TRUE(d.retune);
  EXPECT_EQ(d.interval, 900.0);

  // Clamped at both ends.
  d = policy.decide(600.0, 10.0);
  EXPECT_TRUE(d.retune);
  EXPECT_EQ(d.interval, 50.0);
  d = policy.decide(600.0, 9000.0);
  EXPECT_TRUE(d.retune);
  EXPECT_EQ(d.interval, 5000.0);

  // Exactly on the band edge counts as inside (≤).
  d = policy.decide(100.0, 115.0);
  EXPECT_FALSE(d.retune);
}

TEST(StaticPolicy, NeverRetunes) {
  monitor::StaticPolicy policy;
  const monitor::PolicyDecision d = policy.decide(600.0, 60.0);
  EXPECT_FALSE(d.retune);
  EXPECT_EQ(d.interval, 600.0);
}

TEST(Policy, FactoryRejectsUnknownNames) {
  EXPECT_THROW(monitor::make_policy("pid", {}), fault::Error);
  EXPECT_EQ(monitor::make_policy("static", {})->name(), "static");
  EXPECT_EQ(monitor::make_policy("hysteresis", {})->name(), "hysteresis");
}

monitor::SessionConfig short_session(std::uint64_t seed) {
  monitor::SessionConfig config;
  config.params = core::SystemParameters::paper_six_version();
  config.schedule.kind = monitor::DriftSchedule::Kind::kStep;
  config.schedule.multiplier = 10.0;
  config.schedule.period = 15000.0;
  config.schedule.segment = 1000.0;
  config.duration = 50000.0;
  config.seed = seed;
  config.controller.update_every = 2500.0;
  config.controller.grid_points = 8;
  config.controller.tolerance = 20.0;
  config.controller.interval_lo = 60.0;
  config.controller.interval_hi = 2400.0;
  return config;
}

TEST(MonitorSession, DriftWindowsRealizeTheSchedule) {
  monitor::DriftSchedule schedule;
  schedule.kind = monitor::DriftSchedule::Kind::kStep;
  schedule.multiplier = 8.0;
  schedule.period = 10000.0;
  schedule.segment = 1000.0;
  const auto windows = monitor::make_drift_windows(schedule, 30000.0);
  // One merged window covering [10000, 30000] at ×8.
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].start, 10000.0);
  EXPECT_DOUBLE_EQ(windows[0].end, 30000.0);
  EXPECT_DOUBLE_EQ(windows[0].rate_multiplier, 8.0);

  schedule.kind = monitor::DriftSchedule::Kind::kSinusoid;
  schedule.period = 20000.0;
  const auto sine = monitor::make_drift_windows(schedule, 40000.0);
  EXPECT_GT(sine.size(), 4u);  // piecewise segments tracking the sine
  for (const auto& w : sine) {
    EXPECT_GE(w.rate_multiplier, 1.0);
    EXPECT_LE(w.rate_multiplier, 8.0 + 1e-9);
  }
  // The ramp rises monotonically between period and 2·period.
  EXPECT_NEAR(schedule.multiplier_at(0.0), 1.0, 1e-12);
  schedule.kind = monitor::DriftSchedule::Kind::kRamp;
  EXPECT_NEAR(schedule.multiplier_at(30000.0), 4.5, 1e-9);
  EXPECT_NEAR(schedule.multiplier_at(40000.0), 8.0, 1e-12);
}

TEST(MonitorSession, ControllerReactsToDriftAndStaysStructureCached) {
  const core::Engine engine;
  const std::uint64_t builds_before =
      obs::Registry::global().counter("petri.reachability.builds").value();
  const monitor::SessionConfig config = short_session(11);
  const monitor::SessionResult result = run_monitor_session(engine, config);

  EXPECT_GT(result.updates, 10u);
  EXPECT_GT(result.resolves, 0u);
  EXPECT_GT(result.detections, 0u);
  EXPECT_EQ(result.degraded_updates, 0u);
  // Under a ×10 λc step the controller must tighten the clock.
  EXPECT_GT(result.retunes, 0u);
  EXPECT_LT(result.final_interval, config.params.rejuvenation_interval);
  ASSERT_FALSE(result.records.empty());

  // The killer-app property of the staged pipeline: every re-solve across
  // every update reuses the one structure exploration (rates-only path).
  const std::uint64_t builds_after =
      obs::Registry::global().counter("petri.reachability.builds").value();
  EXPECT_LE(builds_after - builds_before, 1u);
}

TEST(MonitorSession, DeterministicAcrossJobCounts) {
  const core::Engine engine;
  runtime::set_default_jobs(1);
  const monitor::SessionResult serial =
      run_monitor_session(engine, short_session(7));
  runtime::set_default_jobs(4);
  const monitor::SessionResult parallel =
      run_monitor_session(engine, short_session(7));
  runtime::set_default_jobs(0);

  EXPECT_EQ(serial.reliability, parallel.reliability);
  EXPECT_EQ(serial.retunes, parallel.retunes);
  EXPECT_EQ(serial.final_interval, parallel.final_interval);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].target_interval,
              parallel.records[i].target_interval);
    EXPECT_EQ(serial.records[i].applied_interval,
              parallel.records[i].applied_interval);
    EXPECT_EQ(serial.records[i].expected_reliability,
              parallel.records[i].expected_reliability);
    EXPECT_EQ(serial.records[i].lambda.mean, parallel.records[i].lambda.mean);
  }
}

TEST(MonitorSession, ReSolveIsBitIdenticalToColdSolve) {
  const core::Engine engine;
  const monitor::SessionConfig config = short_session(3);
  const monitor::SessionResult result = run_monitor_session(engine, config);

  // Find a record that re-solved (evidence gate passed, not degraded).
  const auto it = std::find_if(
      result.records.begin(), result.records.end(),
      [](const monitor::ControlRecord& r) {
        return !r.degraded && r.expected_reliability > 0.0;
      });
  ASSERT_NE(it, result.records.end());

  // Cold-solve the same estimated point from scratch: dropping every
  // staged cache must reproduce the warm rates-only value bit for bit.
  core::SystemParameters estimated = config.params;
  estimated.mean_time_to_compromise = it->mttc_hat;
  estimated.p_prime = it->p_prime_hat;
  estimated.rejuvenation_interval = it->target_interval;
  const double warm = engine.reliability(estimated);
  EXPECT_EQ(warm, it->expected_reliability);
  core::clear_stage_caches();
  const double cold = engine.reliability(estimated);
  EXPECT_EQ(cold, warm);
}

TEST(MonitorSession, AdaptiveDoesNotLoseToBestStaticUnderDrift) {
  const core::Engine engine;
  const monitor::SessionConfig config = short_session(2024);

  double best_static = 0.0;
  for (const double interval : {300.0, 600.0, 1200.0}) {
    const perception::CampaignResult campaign =
        run_static_campaign(config, interval);
    best_static = std::max(best_static, campaign.paper_reliability());
  }

  const monitor::SessionResult adaptive =
      run_monitor_session(engine, config);
  EXPECT_GE(adaptive.reliability, best_static);
}

TEST(MonitorSession, StaticPolicyNeverTouchesTheClock) {
  const core::Engine engine;
  monitor::SessionConfig config = short_session(5);
  config.policy = "static";
  const monitor::SessionResult result = run_monitor_session(engine, config);
  EXPECT_EQ(result.retunes, 0u);
  EXPECT_EQ(result.final_interval, config.params.rejuvenation_interval);
  EXPECT_GT(result.resolves, 0u);  // it still estimates and re-solves
}

}  // namespace
}  // namespace nvp
