// Tests for the marking-expression language and the textual DSPN format.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/petri/dspn_parser.hpp"
#include "src/petri/expression.hpp"
#include "src/petri/reachability.hpp"

namespace nvp::petri {
namespace {

PetriNet three_place_net() {
  PetriNet net("t");
  net.add_place("Pmh", 4);
  net.add_place("Pmc", 2);
  net.add_place("Pmf", 1);
  return net;
}

// ---- expressions -----------------------------------------------------------

TEST(Expression, ConstantsAndArithmetic) {
  const auto net = three_place_net();
  const Marking m = net.initial_marking();
  EXPECT_DOUBLE_EQ(Expression::parse("1 + 2 * 3", net).eval(m), 7.0);
  EXPECT_DOUBLE_EQ(Expression::parse("(1 + 2) * 3", net).eval(m), 9.0);
  EXPECT_DOUBLE_EQ(Expression::parse("10 / 4", net).eval(m), 2.5);
  EXPECT_DOUBLE_EQ(Expression::parse("-3 + 1", net).eval(m), -2.0);
  EXPECT_DOUBLE_EQ(Expression::parse("2 - 3 - 4", net).eval(m), -5.0);
  EXPECT_DOUBLE_EQ(Expression::parse("1/1523", net).eval(m), 1.0 / 1523.0);
}

TEST(Expression, PlaceReferences) {
  const auto net = three_place_net();
  const Marking m = net.initial_marking();  // (4, 2, 1)
  EXPECT_DOUBLE_EQ(Expression::parse("#Pmh", net).eval(m), 4.0);
  EXPECT_DOUBLE_EQ(Expression::parse("#Pmh + #Pmc + #Pmf", net).eval(m),
                   7.0);
  EXPECT_DOUBLE_EQ(
      Expression::parse("#Pmc / (#Pmc + #Pmh)", net).eval(m),
      2.0 / 6.0);
}

TEST(Expression, ComparisonsAndLogic) {
  const auto net = three_place_net();
  const Marking m = net.initial_marking();
  EXPECT_TRUE(Expression::parse("#Pmh > 3", net).eval_bool(m));
  EXPECT_FALSE(Expression::parse("#Pmh > 4", net).eval_bool(m));
  EXPECT_TRUE(Expression::parse("#Pmh >= 4 && #Pmf == 1", net).eval_bool(m));
  EXPECT_TRUE(Expression::parse("#Pmh < 2 || #Pmc != 0", net).eval_bool(m));
  EXPECT_TRUE(Expression::parse("!(#Pmf == 0)", net).eval_bool(m));
  EXPECT_DOUBLE_EQ(Expression::parse("#Pmh <= 4", net).eval(m), 1.0);
}

TEST(Expression, MinMaxIf) {
  const auto net = three_place_net();
  const Marking m = net.initial_marking();
  EXPECT_DOUBLE_EQ(Expression::parse("min(#Pmh, 2)", net).eval(m), 2.0);
  EXPECT_DOUBLE_EQ(Expression::parse("max(#Pmf, 3)", net).eval(m), 3.0);
  EXPECT_DOUBLE_EQ(
      Expression::parse("if(#Pmc == 0, 0.00001, #Pmc)", net).eval(m), 2.0);
  Marking no_c = m;
  no_c[1] = 0;
  EXPECT_DOUBLE_EQ(
      Expression::parse("if(#Pmc == 0, 0.00001, #Pmc)", net).eval(no_c),
      0.00001);
}

TEST(Expression, TableIWeightsEvaluateAsSpecified) {
  // w1 and w5 from the paper's Table I.
  const auto net = three_place_net();
  Marking m = net.initial_marking();
  const auto w1 = Expression::parse(
      "if(#Pmc == 0, 0.00001, #Pmc / (#Pmc + #Pmh))", net);
  EXPECT_NEAR(w1.eval(m), 2.0 / 6.0, 1e-15);
  const auto w5 = Expression::parse("min(#Pmf, 1)", net);
  EXPECT_DOUBLE_EQ(w5.eval(m), 1.0);
}

TEST(Expression, ConstantDetection) {
  const auto net = three_place_net();
  EXPECT_TRUE(Expression::parse("3 * (2 + 1)", net).is_constant());
  EXPECT_FALSE(Expression::parse("#Pmh + 1", net).is_constant());
  EXPECT_FALSE(Expression::parse("if(1, #Pmf, 2)", net).is_constant());
}

TEST(Expression, AdaptersMatchEval) {
  const auto net = three_place_net();
  const Marking m = net.initial_marking();
  const auto expr = Expression::parse("#Pmh * 2", net);
  EXPECT_DOUBLE_EQ(expr.as_rate()(m), 8.0);
  EXPECT_EQ(expr.as_arc_weight()(m), 8);
  EXPECT_TRUE(Expression::parse("#Pmf >= 1", net).as_guard()(m));
}

TEST(Expression, ErrorsAreDiagnosed) {
  const auto net = three_place_net();
  EXPECT_THROW(Expression::parse("#Nope", net), NetError);
  EXPECT_THROW(Expression::parse("1 +", net), ExpressionError);
  EXPECT_THROW(Expression::parse("(1", net), ExpressionError);
  EXPECT_THROW(Expression::parse("min(1)", net), ExpressionError);
  EXPECT_THROW(Expression::parse("foo(1, 2)", net), ExpressionError);
  EXPECT_THROW(Expression::parse("1 2", net), ExpressionError);
  EXPECT_THROW(Expression::parse("#", net), ExpressionError);
  EXPECT_THROW(Expression::parse("1 @ 2", net), ExpressionError);
  // Division by zero is an eval-time error.
  const auto div = Expression::parse("1 / #Pmf", net);
  Marking zero = net.initial_marking();
  zero[2] = 0;
  EXPECT_THROW(div.eval(zero), ExpressionError);
}

// ---- DSPN file format ---------------------------------------------------------

constexpr const char* kWorkcell = R"(
// two-machine workcell with deterministic inspection
net workcell
place ok = 2
place worn
place broken
place clock = 1
place expired

transition wear exp rate 1/40
transition breakdown exp rate 1/120
transition repair exp rate 1/25
transition inspect det delay 50
transition service imm priority 2

arc ok -> wear
arc wear -> worn
arc worn -> breakdown
arc breakdown -> broken
arc broken -> repair
arc repair -> ok
arc clock -> inspect
arc inspect -> expired
arc expired -> service
arc service -> clock
arc worn -> service weight #worn
arc service -> ok weight #worn
)";

TEST(DspnParser, ParsesWorkcellModel) {
  const auto net = parse_dspn_string(kWorkcell);
  EXPECT_EQ(net.name(), "workcell");
  EXPECT_EQ(net.place_count(), 5u);
  EXPECT_EQ(net.transition_count(), 5u);
  EXPECT_EQ(net.initial_marking()[net.place("ok").index], 2);
  EXPECT_DOUBLE_EQ(
      net.deterministic_delay(net.transition_id("inspect").index), 50.0);
  const auto& service = net.transition(net.transition_id("service").index);
  EXPECT_EQ(service.kind, TransitionKind::kImmediate);
  EXPECT_EQ(service.priority, 2);
}

TEST(DspnParser, ParsedModelSolves) {
  const auto net = parse_dspn_string(kWorkcell);
  const auto graph = TangibleReachabilityGraph::build(net);
  const auto solution = markov::DspnSteadyStateSolver().solve(graph);
  EXPECT_FALSE(solution.pure_ctmc);
  double total = 0.0;
  for (double pi : solution.probabilities) total += pi;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DspnParser, MarkingDependentRateFromFile) {
  const auto net = parse_dspn_string(R"(
net rates
place A = 3
transition leave exp rate 0.5 * #A
arc A -> leave
)");
  const auto t = net.transition_id("leave");
  EXPECT_DOUBLE_EQ(net.rate_or_weight(t.index, net.initial_marking()), 1.5);
}

TEST(DspnParser, GuardsAndInhibitorsFromFile) {
  const auto net = parse_dspn_string(R"(
net guarded
place A = 1
place B
transition t exp rate 1
arc A -> t
arc t -> B
inhibit B -o t weight 2
guard t #B < 1
)");
  const auto t = net.transition_id("t");
  EXPECT_TRUE(net.is_enabled(t.index, net.initial_marking()));
  Marking m = net.initial_marking();
  m[net.place("B").index] = 1;
  EXPECT_FALSE(net.is_enabled(t.index, m));  // guard blocks before inhibitor
}

TEST(DspnParser, RoundTripThroughSerializer) {
  // Factory model -> text -> parse -> same steady-state reward.
  const auto model = core::PerceptionModelFactory::build(
      core::SystemParameters::paper_four_version());
  const std::string text = to_dspn_text(model.net);
  const auto reparsed = parse_dspn_string(text);
  const auto g1 = TangibleReachabilityGraph::build(model.net);
  const auto g2 = TangibleReachabilityGraph::build(reparsed);
  EXPECT_EQ(g1.size(), g2.size());
  const auto pi1 = markov::DspnSteadyStateSolver().solve(g1);
  const auto pi2 = markov::DspnSteadyStateSolver().solve(g2);
  // Compare the expected healthy-module count.
  double e1 = 0.0, e2 = 0.0;
  for (std::size_t s = 0; s < g1.size(); ++s)
    e1 += pi1.probabilities[s] *
          g1.marking(s)[model.pmh.index];
  const auto pmh2 = reparsed.place("Pmh");
  for (std::size_t s = 0; s < g2.size(); ++s)
    e2 += pi2.probabilities[s] * g2.marking(s)[pmh2.index];
  EXPECT_NEAR(e1, e2, 1e-10);
}

TEST(DspnParser, ShippedSixVersionModelMatchesFactory) {
  // models/perception_6v.dspn encodes Fig. 2(b, c) + Table I in the file
  // format; it must induce the same Markov-regenerative process as the
  // programmatic factory.
  const auto file_net =
      load_dspn_file(std::string(NVP_SOURCE_DIR) +
                     "/models/perception_6v.dspn");
  const auto factory = core::PerceptionModelFactory::build(
      core::SystemParameters::paper_six_version());

  const auto g_file = TangibleReachabilityGraph::build(file_net);
  const auto g_factory = TangibleReachabilityGraph::build(factory.net);
  ASSERT_EQ(g_file.size(), g_factory.size());

  const auto pi_file = markov::DspnSteadyStateSolver().solve(g_file);
  const auto pi_factory =
      markov::DspnSteadyStateSolver().solve(g_factory);

  // Compare stationary module-count expectations.
  auto expectation = [](const TangibleReachabilityGraph& g,
                        const linalg::Vector& pi, std::size_t place) {
    double out = 0.0;
    for (std::size_t s = 0; s < g.size(); ++s)
      out += pi[s] * g.marking(s)[place];
    return out;
  };
  for (const char* place : {"Pmh", "Pmc", "Pmf", "Pmr"}) {
    EXPECT_NEAR(expectation(g_file, pi_file.probabilities,
                            file_net.place(place).index),
                expectation(g_factory, pi_factory.probabilities,
                            factory.net.place(place).index),
                1e-9)
        << place;
  }
}

TEST(DspnParser, ShippedSixVersionModelMatchesFactoryDistribution) {
  // Stronger parity than the expectation check above: the parsed file and
  // the factory must agree on the stationary *distribution* state for
  // state. The two nets may number places and states differently (the
  // parser interns declarations in file order), so states are matched by
  // marking content remapped through place names.
  const auto file_net =
      load_dspn_file(std::string(NVP_SOURCE_DIR) +
                     "/models/perception_6v.dspn");
  const auto factory = core::PerceptionModelFactory::build(
      core::SystemParameters::paper_six_version());
  ASSERT_EQ(file_net.place_count(), factory.net.place_count());

  const auto g_file = TangibleReachabilityGraph::build(file_net);
  const auto g_factory = TangibleReachabilityGraph::build(factory.net);
  ASSERT_EQ(g_file.size(), g_factory.size());
  const auto pi_file = markov::DspnSteadyStateSolver().solve(g_file);
  const auto pi_factory = markov::DspnSteadyStateSolver().solve(g_factory);

  std::vector<std::size_t> to_factory(file_net.place_count());
  for (std::size_t p = 0; p < file_net.place_count(); ++p)
    to_factory[p] = factory.net.place(file_net.place_name(p)).index;

  // Equal state counts plus a factory counterpart for every file state
  // make the marking map a bijection, so this compares the distributions
  // in full.
  double matched_mass = 0.0;
  for (std::size_t s = 0; s < g_file.size(); ++s) {
    const Marking& m_file = g_file.marking(s);
    Marking m(factory.net.place_count(), 0);
    for (std::size_t p = 0; p < m_file.size(); ++p)
      m[to_factory[p]] = m_file[p];
    const auto idx = g_factory.find(m);
    ASSERT_TRUE(idx.has_value())
        << "file-model state " << s << " has no factory counterpart";
    EXPECT_NEAR(pi_file.probabilities[s], pi_factory.probabilities[*idx],
                1e-9)
        << "state " << s;
    matched_mass += pi_factory.probabilities[*idx];
  }
  EXPECT_NEAR(matched_mass, 1.0, 1e-9);
}

TEST(DspnParser, ShippedExampleModelsLoadAndSolve) {
  for (const char* model : {"/models/workcell.dspn", "/models/mm1k.dspn"}) {
    const auto net =
        load_dspn_file(std::string(NVP_SOURCE_DIR) + model);
    const auto graph = TangibleReachabilityGraph::build(net);
    const auto solution = markov::DspnSteadyStateSolver().solve(graph);
    double total = 0.0;
    for (double pi : solution.probabilities) total += pi;
    EXPECT_NEAR(total, 1.0, 1e-9) << model;
  }
}

TEST(DspnParser, DiagnosesErrorsWithLineNumbers) {
  auto expect_error_on_line = [](const std::string& text,
                                 std::size_t line) {
    try {
      parse_dspn_string(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_on_line("bogus statement", 1);
  expect_error_on_line("net x\nplace A = nope", 2);
  expect_error_on_line("net x\nplace A\ntransition t exp 1.0", 3);
  expect_error_on_line("net x\nplace A\ntransition t det delay #A", 3);
  expect_error_on_line("net x\nplace A\narc A -> missing", 3);
  expect_error_on_line("net x\nplace A\nplace A", 3);
  expect_error_on_line("net x\nnet y\nplace A", 2);
}

TEST(DspnParser, SerializerEmitsInhibitorsAndMarksUnserializable) {
  PetriNet net("s");
  const auto a = net.add_place("A", 1);
  const auto t = net.add_exponential("t", 2.0);
  net.add_input_arc(t, a);
  net.add_output_arc(t, a);
  net.add_inhibitor_arc(t, a, 3);
  net.set_guard(t, [](const Marking&) { return true; });
  const std::string text = to_dspn_text(net);
  EXPECT_NE(text.find("inhibit A -o t weight 3"), std::string::npos);
  EXPECT_NE(text.find("guard on t not serializable"), std::string::npos);
}

}  // namespace
}  // namespace nvp::petri
