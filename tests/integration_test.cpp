// Cross-module validation (DESIGN.md §6): the analytic MRGP pipeline, the
// discrete-event DSPN simulator, and the executable Monte-Carlo perception
// system must agree on the paper's models, and the paper's qualitative
// findings must hold end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/reliability.hpp"
#include "src/core/sweep.hpp"
#include "src/markov/rewards.hpp"
#include "src/perception/system.hpp"
#include "src/sim/dspn_simulator.hpp"

namespace nvp {
namespace {

using core::ReliabilityAnalyzer;
using core::RewardConvention;
using core::SystemParameters;

markov::MarkingReward reward_for(const core::BuiltModel& model,
                                 const core::ReliabilityModel& rewards) {
  return [&model, &rewards](const petri::Marking& m) {
    return rewards.state_reliability(model.healthy(m), model.compromised(m),
                                     model.down(m));
  };
}

TEST(Integration, AnalyticMatchesDspnSimulatorFourVersion) {
  const auto params = SystemParameters::paper_four_version();
  ReliabilityAnalyzer::Options opts;
  opts.attachment = core::RewardAttachment::kAppendixMatrices;
  const auto analytic = ReliabilityAnalyzer(opts).analyze(params);
  const auto model = core::PerceptionModelFactory::build(params);
  const auto rewards = core::make_reliability_model(params);
  sim::DspnSimulator simulator(model.net);
  sim::SimulationOptions opt;
  opt.warmup_time = 2e4;
  opt.horizon = 3e6;
  opt.seed = 1;
  const auto est =
      simulator.estimate(reward_for(model, *rewards), opt, 10);
  EXPECT_NEAR(est.mean, analytic.expected_reliability,
              std::max(4.0 * est.std_error, 0.004));
}

TEST(Integration, AnalyticMatchesDspnSimulatorSixVersion) {
  const auto params = SystemParameters::paper_six_version();
  ReliabilityAnalyzer::Options opts;
  opts.attachment = core::RewardAttachment::kAppendixMatrices;
  const auto analytic = ReliabilityAnalyzer(opts).analyze(params);
  const auto model = core::PerceptionModelFactory::build(params);
  const auto rewards = core::make_reliability_model(params);
  sim::DspnSimulator simulator(model.net);
  sim::SimulationOptions opt;
  opt.warmup_time = 1e4;
  opt.horizon = 2e6;
  opt.seed = 2;
  const auto est =
      simulator.estimate(reward_for(model, *rewards), opt, 10);
  EXPECT_NEAR(est.mean, analytic.expected_reliability,
              std::max(4.0 * est.std_error, 0.003));
}

TEST(Integration, StateDistributionAnalyticVsSimulated) {
  // Compare the stationary (i, j, k) masses of the six-version DSPN between
  // the MRGP solver and the simulator.
  const auto params = SystemParameters::paper_six_version();
  const auto model = core::PerceptionModelFactory::build(params);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  const auto solution = markov::DspnSteadyStateSolver().solve(g);

  const auto healthy_of = [&model](const petri::Marking& m) {
    return model.healthy(m);
  };
  const auto analytic_mass =
      markov::mass_by_feature(g, solution.probabilities, healthy_of);

  sim::DspnSimulator simulator(model.net);
  sim::SimulationOptions opt;
  opt.warmup_time = 1e4;
  opt.horizon = 4e6;
  opt.seed = 3;
  const auto sim_mass = simulator.feature_distribution(healthy_of, opt);

  for (const auto& [healthy, mass] : analytic_mass) {
    if (mass < 0.005) continue;  // skip statistically hopeless tails
    ASSERT_TRUE(sim_mass.count(healthy)) << "healthy = " << healthy;
    EXPECT_NEAR(sim_mass.at(healthy), mass, 0.01)
        << "healthy = " << healthy;
  }
}

TEST(Integration, MonteCarloSystemMatchesGeneralizedAnalytic) {
  ReliabilityAnalyzer::Options opts;
  opts.convention = RewardConvention::kGeneralized;
  // The Monte-Carlo voter counts inconclusive frames in degraded states as
  // safe, which corresponds to the appendix matrices, not the paper's
  // operational-only embedding.
  opts.attachment = core::RewardAttachment::kAppendixMatrices;
  const ReliabilityAnalyzer analyzer(opts);
  for (const auto& params : {SystemParameters::paper_four_version(),
                             SystemParameters::paper_six_version()}) {
    perception::NVersionPerceptionSystem::Config cfg;
    cfg.params = params;
    cfg.seed = 4;
    cfg.frame_interval = 2.0;
    perception::NVersionPerceptionSystem system(cfg);
    const auto result = system.run(6e6);
    EXPECT_NEAR(result.paper_reliability(),
                analyzer.analyze(params).expected_reliability, 0.008)
        << params.describe();
  }
}

TEST(Integration, MonteCarloStateOccupancyMatchesDspn) {
  const auto params = SystemParameters::paper_four_version();
  const auto model = core::PerceptionModelFactory::build(params);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  const auto pi = markov::DspnSteadyStateSolver().solve(g);

  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = params;
  cfg.seed = 5;
  cfg.frame_interval = 10.0;
  perception::NVersionPerceptionSystem system(cfg);
  const auto result = system.run(2e7);

  for (std::size_t s = 0; s < g.size(); ++s) {
    const auto& m = g.marking(s);
    const auto key = std::make_tuple(model.healthy(m),
                                     model.compromised(m), model.down(m));
    const double analytic_mass = pi.probabilities[s];
    if (analytic_mass < 0.01) continue;
    ASSERT_TRUE(result.state_time_fraction.count(key));
    EXPECT_NEAR(result.state_time_fraction.at(key), analytic_mass, 0.02);
  }
}

// ---- the paper's qualitative findings -----------------------------------------

TEST(Integration, Fig3ShapeInteriorMaximum) {
  // E[R_6v] rises sharply for very small intervals... actually the paper
  // shows a maximum at 400-450 s with decline on both sides; verify an
  // interior maximum exists and the curve declines toward 3000 s.
  const ReliabilityAnalyzer analyzer;
  const auto base = SystemParameters::paper_six_version();
  const auto points = sweep_parameter(
      analyzer, base, core::set_rejuvenation_interval(),
      core::linspace(200.0, 3000.0, 15));
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].expected_reliability > points[best].expected_reliability)
      best = i;
  EXPECT_GT(best, 0u);
  EXPECT_LT(best, points.size() - 1);
  EXPECT_GT(points[best].expected_reliability,
            points.back().expected_reliability);
}

TEST(Integration, Fig4aCrossoversExist) {
  // The 4v system beats the rejuvenating 6v system for very small and very
  // large mean times to compromise (paper: ~525 s and ~6000 s).
  const ReliabilityAnalyzer analyzer;
  auto four = SystemParameters::paper_four_version();
  auto six = SystemParameters::paper_six_version();
  auto value = [&](const SystemParameters& base, double mttc) {
    SystemParameters p = base;
    p.mean_time_to_compromise = mttc;
    return analyzer.analyze(p).expected_reliability;
  };
  EXPECT_GT(value(four, 200.0), value(six, 200.0));    // 4v wins early
  EXPECT_LT(value(four, 1523.0), value(six, 1523.0));  // 6v wins mid
  EXPECT_GT(value(four, 50000.0), value(six, 50000.0));  // 4v wins late
}

TEST(Integration, Fig4dRejuvenationOnlyHelpsForLargePPrime) {
  const ReliabilityAnalyzer analyzer;
  auto value = [&](const SystemParameters& base, double pp) {
    SystemParameters p = base;
    p.p_prime = pp;
    return analyzer.analyze(p).expected_reliability;
  };
  const auto four = SystemParameters::paper_four_version();
  const auto six = SystemParameters::paper_six_version();
  EXPECT_GT(value(four, 0.1), value(six, 0.1));  // small p': 4v better
  EXPECT_LT(value(four, 0.8), value(six, 0.8));  // large p': 6v better
}

TEST(Integration, Fig4bAlphaImpactLargerForSixVersion) {
  // Paper: varying alpha 0.1 -> 1.0 degrades the 4v system by ~1.5% and
  // the 6v system by ~6.6%.
  const ReliabilityAnalyzer analyzer;
  auto drop = [&](const SystemParameters& base) {
    SystemParameters lo = base, hi = base;
    lo.alpha = 0.1;
    hi.alpha = 1.0;
    const double r_lo = analyzer.analyze(lo).expected_reliability;
    const double r_hi = analyzer.analyze(hi).expected_reliability;
    return (r_lo - r_hi) / r_lo;
  };
  const double four_drop = drop(SystemParameters::paper_four_version());
  const double six_drop = drop(SystemParameters::paper_six_version());
  EXPECT_LT(four_drop, 0.04);
  EXPECT_GT(six_drop, four_drop);
  EXPECT_NEAR(six_drop, 0.066, 0.035);
}

TEST(Integration, Fig4cSixVersionAlwaysBetterButMoreSensitive) {
  const ReliabilityAnalyzer analyzer;
  double four_first = 0.0, four_last = 0.0;
  double six_first = 0.0, six_last = 0.0;
  for (double p : {0.01, 0.2}) {
    SystemParameters four = SystemParameters::paper_four_version();
    SystemParameters six = SystemParameters::paper_six_version();
    four.p = p;
    six.p = p;
    const double r4 = analyzer.analyze(four).expected_reliability;
    const double r6 = analyzer.analyze(six).expected_reliability;
    EXPECT_GT(r6, r4) << "p = " << p;  // 6v better for all p (paper)
    if (p == 0.01) {
      four_first = r4;
      six_first = r6;
    } else {
      four_last = r4;
      six_last = r6;
    }
  }
  // The degradation with p is steeper for the six-version system.
  EXPECT_GT((six_first - six_last) / six_first,
            (four_first - four_last) / four_first);
}

TEST(Integration, OptimalIntervalNearPaperRange) {
  const ReliabilityAnalyzer analyzer;
  const auto optimum = core::optimize_rejuvenation_interval(
      analyzer, SystemParameters::paper_six_version(), 150.0, 3000.0, 20,
      2.0);
  // Paper reports 400-450 s for its parameters; our semantics shift this
  // somewhat. Assert the meaningful property: an interior optimum well
  // below the 600 s default region and the 3000 s tail.
  EXPECT_GT(optimum.x, 150.0 + 5.0);
  EXPECT_LT(optimum.x, 1500.0);
}

TEST(Integration, SemanticsAblationOnlySingleServerMatchesPaper) {
  // The calibration result behind DESIGN.md §2: single-server reproduces
  // the paper's four-version headline; infinite-server misses it by > 2%.
  auto four = SystemParameters::paper_four_version();
  const ReliabilityAnalyzer analyzer;
  const double single = analyzer.analyze(four).expected_reliability;
  four.semantics = core::FiringSemantics::kInfiniteServer;
  const double infinite = analyzer.analyze(four).expected_reliability;
  EXPECT_LT(std::fabs(single - 0.8233477), 0.0025);
  EXPECT_GT(std::fabs(infinite - 0.8233477), 0.02);
}

}  // namespace
}  // namespace nvp
