// Tests for the persistent solve store (src/store/): serialization
// round-trips (including CsrPattern parts and adversarial payloads), the
// on-disk entry format's corruption detection (version skew, truncation,
// bit flips), LRU eviction and reopen persistence, two-process concurrent
// access through real flock(2), and warm starts across a simulated process
// / nvpd restart (in-memory tiers wiped, disk tier must serve bit-identical
// results with zero recomputation).

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/core/analyzer.hpp"
#include "src/core/staged.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/obs/metrics.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/store/serialize.hpp"
#include "src/store/store.hpp"

namespace nvp {
namespace {

namespace fs = std::filesystem;

std::uint64_t counter_value(const std::string& name) {
  const auto snapshot = obs::Registry::global().snapshot();
  for (const auto& [counter, value] : snapshot.counters)
    if (counter == name) return value;
  return 0;
}

std::uint64_t solve_count() {
  return counter_value("markov.solver.mrgp_solves") +
         counter_value("markov.solver.ctmc_solves");
}

/// Fresh scratch directory per test; removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::unique_ptr<store::Store> open_store(const ScratchDir& dir,
                                         std::uint64_t capacity = 0) {
  store::Options options;
  options.capacity_bytes = capacity;
  std::string error;
  auto s = store::Store::open(dir.str(), options, &error);
  EXPECT_NE(s, nullptr) << error;
  return s;
}

/// The single entry file of a store that holds exactly one entry.
fs::path only_entry(const ScratchDir& dir) {
  fs::path found;
  int count = 0;
  for (const auto& e : fs::directory_iterator(dir.path() / "entries")) {
    found = e.path();
    ++count;
  }
  EXPECT_EQ(count, 1);
  return found;
}

// ---------------------------------------------------------------------------
// Serialization primitives.

TEST(StoreSerialize, RoundTripsEveryFieldType) {
  store::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-12345);
  w.boolean(true);
  w.boolean(false);
  // Doubles must survive exactly, including the values text formatting
  // mangles: negative zero, denormals, infinities, and a NaN payload.
  const std::vector<double> specials = {
      -0.0, 5e-324, 1.7976931348623157e308, 0.1 + 0.2,
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN()};
  w.vec_f64(specials);
  w.vec_u64({1, 2, 3});
  w.vec_sizes({0, 42, 9999999});
  w.vec_i32({-1, 0, 1});
  w.vec_char({'n', 'v', 'p'});
  const char blob[] = "payload";
  w.bytes(blob, sizeof(blob));

  store::Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  const std::vector<double> back = r.vec_f64();
  ASSERT_EQ(back.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i)
    EXPECT_EQ(std::memcmp(&back[i], &specials[i], sizeof(double)), 0)
        << "double " << i << " not bit-identical";
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_sizes(), (std::vector<std::size_t>{0, 42, 9999999}));
  EXPECT_EQ(r.vec_i32(), (std::vector<std::int32_t>{-1, 0, 1}));
  EXPECT_EQ(r.vec_char(), (std::vector<char>{'n', 'v', 'p'}));
  EXPECT_EQ(r.u64(), sizeof(blob));  // bytes() length prefix
  ASSERT_EQ(r.remaining(), sizeof(blob));
  for (char expected : blob) EXPECT_EQ(r.u8(), static_cast<uint8_t>(expected));
  r.expect_done();
  EXPECT_THROW(r.u8(), store::SerializationError);
}

TEST(StoreSerialize, TruncatedPayloadThrowsInsteadOfOverrunning) {
  store::Writer w;
  w.u64(7);
  w.vec_f64({1.0, 2.0, 3.0});
  const auto& full = w.buffer();
  // Every strict prefix must throw somewhere before running out of fields;
  // no prefix may crash or read past its end.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    store::Reader r(full.data(), cut);
    EXPECT_THROW(
        {
          r.u64();
          r.vec_f64();
          r.expect_done();
        },
        store::SerializationError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(StoreSerialize, HostileCountCannotForceHugeAllocation) {
  // A corrupt element count larger than the remaining payload must be
  // rejected before any allocation happens.
  store::Writer w;
  w.u64(0xFFFFFFFFFFFFFFF0ULL);  // claimed count
  w.f64(1.0);                    // 8 actual payload bytes
  store::Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_THROW(r.vec_f64(), store::SerializationError);
}

TEST(StoreSerialize, TrailingBytesAreRejected) {
  store::Writer w;
  w.u32(1);
  w.u8(0);  // a newer writer appended a field this reader doesn't know
  store::Reader r(w.buffer().data(), w.buffer().size());
  (void)r.u32();
  EXPECT_FALSE(r.done());
  EXPECT_THROW(r.expect_done(), store::SerializationError);
}

// ---------------------------------------------------------------------------
// CsrPattern round-trip: the bulk array the structure artifact persists.

TEST(StoreSerialize, RandomCsrPatternsRoundTripBitIdentically) {
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t rows = 1 + rng() % 40;
    const std::size_t cols = 1 + rng() % 40;
    const std::size_t slots = rng() % 200;  // duplicates very likely
    std::vector<linalg::Triplet> triplets;
    triplets.reserve(slots);
    std::uniform_real_distribution<double> value(-2.0, 2.0);
    for (std::size_t i = 0; i < slots; ++i)
      triplets.push_back({rng() % rows, rng() % cols, 0.0});
    const linalg::CsrPattern original(rows, cols, triplets);

    // Serialize the raw parts the way the artifact codec does.
    store::Writer w;
    w.u64(original.rows());
    w.u64(original.cols());
    w.vec_sizes(original.perm());
    w.vec_sizes(original.sorted_rows());
    w.vec_sizes(original.sorted_cols());
    store::Reader r(w.buffer().data(), w.buffer().size());
    const auto rebuilt_rows = static_cast<std::size_t>(r.u64());
    const auto rebuilt_cols = static_cast<std::size_t>(r.u64());
    // Sequence the three reads explicitly: argument evaluation order is
    // unspecified, so inlining them into the call would scramble the parts.
    std::vector<std::size_t> perm = r.vec_sizes();
    std::vector<std::size_t> sorted_row = r.vec_sizes();
    std::vector<std::size_t> sorted_col = r.vec_sizes();
    r.expect_done();
    const linalg::CsrPattern rebuilt = linalg::CsrPattern::from_parts(
        rebuilt_rows, rebuilt_cols, std::move(perm), std::move(sorted_row),
        std::move(sorted_col));

    // pour() on the rebuilt pattern must be bit-identical to the original
    // (and to direct triplet assembly).
    std::vector<double> values(original.slot_count());
    for (auto& v : values) v = value(rng);
    const linalg::Vector x = [&] {
      linalg::Vector probe(cols);
      for (auto& v : probe) v = value(rng);
      return probe;
    }();
    const linalg::SparseMatrixCsr a = original.pour(values);
    const linalg::SparseMatrixCsr b = rebuilt.pour(values);
    ASSERT_EQ(a.nonzeros(), b.nonzeros()) << "trial " << trial;
    const linalg::Vector ya = a.multiply(x);
    const linalg::Vector yb = b.multiply(x);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::size_t i = 0; i < ya.size(); ++i)
      EXPECT_EQ(ya[i], yb[i]) << "trial " << trial << " row " << i;
  }
}

// ---------------------------------------------------------------------------
// Store: round-trip, misses, overwrite.

TEST(StoreTest, PutGetRoundTripsExactBytes) {
  ScratchDir dir("nvp_store_roundtrip");
  auto s = open_store(dir);
  std::mt19937_64 rng(7);
  for (const std::size_t size : {std::size_t{1}, std::size_t{7},
                                 std::size_t{4096}, std::size_t{100001}}) {
    std::vector<std::uint8_t> payload(size);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    ASSERT_TRUE(s->put(store::Kind::kRates, size, payload.data(),
                       payload.size()));
    const auto back = s->get(store::Kind::kRates, size);
    ASSERT_TRUE(back.has_value()) << size << " bytes";
    EXPECT_EQ(*back, payload);
  }
  // Same key, different kind: distinct entries.
  EXPECT_FALSE(s->get(store::Kind::kStructure, 7).has_value());
}

TEST(StoreTest, MissingKeyIsAMiss) {
  ScratchDir dir("nvp_store_miss");
  auto s = open_store(dir);
  EXPECT_FALSE(s->get(store::Kind::kWholeResult, 42).has_value());
}

TEST(StoreTest, OverwriteReplacesThePayload) {
  ScratchDir dir("nvp_store_overwrite");
  auto s = open_store(dir);
  const std::string v1 = "first";
  const std::string v2 = "second, longer payload";
  ASSERT_TRUE(s->put(store::Kind::kRewards, 9, v1.data(), v1.size()));
  ASSERT_TRUE(s->put(store::Kind::kRewards, 9, v2.data(), v2.size()));
  const auto back = s->get(store::Kind::kRewards, 9);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::string(back->begin(), back->end()), v2);
  EXPECT_EQ(s->stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// Corruption detection: every mutation must be a counted miss, never data.

TEST(StoreTest, FutureFormatVersionIsRejected) {
  ScratchDir dir("nvp_store_version");
  auto s = open_store(dir);
  const std::string payload = "from the future";
  ASSERT_TRUE(s->put(store::Kind::kStructure, 3, payload.data(),
                     payload.size()));
  // Re-stamp the header as format_version+1 WITH consistent checksums — a
  // well-formed entry from a newer writer, not random damage. The reader
  // must still reject it (it cannot know the future layout).
  const fs::path path = only_entry(dir);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  std::vector<char> header(store::kHeaderBytes);
  f.read(header.data(), header.size());
  const std::uint32_t future = store::kFormatVersion + 1;
  std::memcpy(header.data() + 8, &future, sizeof(future));
  const std::uint64_t checksum = store::fnv1a(header.data(), 40);
  std::memcpy(header.data() + 40, &checksum, sizeof(checksum));
  f.seekp(0);
  f.write(header.data(), header.size());
  f.close();

  const std::uint64_t corrupt_before = counter_value("store.corrupt");
  EXPECT_FALSE(s->get(store::Kind::kStructure, 3).has_value());
  EXPECT_GT(counter_value("store.corrupt"), corrupt_before);
}

TEST(StoreTest, TruncatedEntryIsACountedMiss) {
  ScratchDir dir("nvp_store_truncate");
  auto s = open_store(dir);
  std::vector<std::uint8_t> payload(1000, 0x5A);
  ASSERT_TRUE(s->put(store::Kind::kRates, 11, payload.data(),
                     payload.size()));
  const fs::path path = only_entry(dir);
  fs::resize_file(path, fs::file_size(path) / 2);

  const std::uint64_t corrupt_before = counter_value("store.corrupt");
  EXPECT_FALSE(s->get(store::Kind::kRates, 11).has_value());
  EXPECT_GT(counter_value("store.corrupt"), corrupt_before);
  // The damaged file must be gone: the next write recreates it cleanly.
  EXPECT_FALSE(fs::exists(path));
  ASSERT_TRUE(s->put(store::Kind::kRates, 11, payload.data(),
                     payload.size()));
  EXPECT_TRUE(s->get(store::Kind::kRates, 11).has_value());
}

TEST(StoreTest, PayloadBitFlipIsACountedMiss) {
  ScratchDir dir("nvp_store_bitflip");
  auto s = open_store(dir);
  std::vector<std::uint8_t> payload(256, 0xC3);
  ASSERT_TRUE(s->put(store::Kind::kWholeResult, 5, payload.data(),
                     payload.size()));
  const fs::path path = only_entry(dir);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(store::kHeaderBytes + 17);
  char byte;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  f.seekp(store::kHeaderBytes + 17);
  f.write(&byte, 1);
  f.close();

  const std::uint64_t corrupt_before = counter_value("store.corrupt");
  EXPECT_FALSE(s->get(store::Kind::kWholeResult, 5).has_value());
  EXPECT_GT(counter_value("store.corrupt"), corrupt_before);
}

// ---------------------------------------------------------------------------
// Eviction, reopen, gc.

TEST(StoreTest, LruEvictionKeepsRecentlyReadEntries) {
  ScratchDir dir("nvp_store_lru");
  // Each entry is 64 header + 1000 payload bytes; cap fits ~4 entries.
  const std::uint64_t cap = 4 * (store::kHeaderBytes + 1000) + 500;
  auto s = open_store(dir, cap);
  std::vector<std::uint8_t> payload(1000, 1);
  for (std::uint64_t key = 1; key <= 4; ++key)
    ASSERT_TRUE(s->put(store::Kind::kRewards, key, payload.data(),
                       payload.size()));
  // Refresh key 1 (the oldest write): the read bumps its recency, so the
  // next over-capacity write must evict key 2 instead.
  ASSERT_TRUE(s->get(store::Kind::kRewards, 1).has_value());
  ASSERT_TRUE(s->put(store::Kind::kRewards, 5, payload.data(),
                     payload.size()));
  EXPECT_TRUE(s->get(store::Kind::kRewards, 1).has_value());
  EXPECT_FALSE(s->get(store::Kind::kRewards, 2).has_value());
  EXPECT_TRUE(s->get(store::Kind::kRewards, 5).has_value());
  EXPECT_LE(s->stats().bytes, cap);
}

TEST(StoreTest, ReopenServesPersistedEntries) {
  ScratchDir dir("nvp_store_reopen");
  const std::string payload = "survives the process";
  {
    auto s = open_store(dir);
    ASSERT_TRUE(s->put(store::Kind::kStructure, 77, payload.data(),
                       payload.size()));
  }
  auto s = open_store(dir);
  const auto back = s->get(store::Kind::kStructure, 77);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::string(back->begin(), back->end()), payload);
  const store::Stats stats = s->stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.entries_by_kind[0], 1u);  // kStructure = 1 -> slot 0
}

TEST(StoreTest, GcAdoptsOrphansSweepsTempsAndEvicts) {
  ScratchDir dir("nvp_store_gc");
  std::vector<std::uint8_t> payload(500, 9);
  auto s = open_store(dir);
  for (std::uint64_t key = 1; key <= 3; ++key)
    ASSERT_TRUE(s->put(store::Kind::kRates, key, payload.data(),
                       payload.size()));
  // Simulate crash leftovers: a temp file from a dead writer and a lost
  // index (entries now orphans from the index's point of view).
  std::ofstream(dir.path() / "entries" / "junk.tmp-9999") << "crash";
  fs::remove(dir.path() / "index.v1");
  {
    auto fresh = open_store(dir);  // index rebuild by directory scan
    EXPECT_EQ(fresh->gc(), 0u);    // nothing over cap; temps swept
    EXPECT_FALSE(fs::exists(dir.path() / "entries" / "junk.tmp-9999"));
    EXPECT_EQ(fresh->stats().entries, 3u);
    // gc with an explicit tiny target evicts down to it.
    EXPECT_GT(fresh->gc(store::kHeaderBytes + 600), 0u);
    EXPECT_LE(fresh->stats().bytes, store::kHeaderBytes + 600);
  }
}

// ---------------------------------------------------------------------------
// Cross-process: two stores on one directory through real flock(2).

TEST(StoreTest, TwoProcessesShareOneStore) {
  ScratchDir dir("nvp_store_fork");
  constexpr int kEntries = 40;
  std::vector<std::uint8_t> payload(300);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  {
    auto parent = open_store(dir);
    // Seed half the keys so the child has something to read immediately.
    for (int i = 0; i < kEntries; ++i)
      ASSERT_TRUE(parent->put(store::Kind::kRewards, 1000 + i,
                              payload.data(), payload.size()));
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: open its own Store on the same directory, write its keys
    // while reading the parent's. Any failure exits nonzero.
    std::string error;
    auto child = store::Store::open(dir.str(), store::Options{}, &error);
    if (child == nullptr) _exit(10);
    int bad = 0;
    for (int i = 0; i < kEntries; ++i) {
      if (!child->put(store::Kind::kRewards, 2000 + i, payload.data(),
                      payload.size()))
        ++bad;
      const auto got = child->get(store::Kind::kRewards, 1000 + i);
      if (!got.has_value() || *got != payload) ++bad;
    }
    _exit(bad == 0 ? 0 : 1);
  }

  // Parent: interleave its own writes with the child's.
  auto parent = open_store(dir);
  for (int i = 0; i < kEntries; ++i)
    ASSERT_TRUE(parent->put(store::Kind::kRewardTable, 3000 + i,
                            payload.data(), payload.size()));
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Everything either process wrote must now validate from the parent.
  for (int i = 0; i < kEntries; ++i) {
    EXPECT_TRUE(parent->get(store::Kind::kRewards, 1000 + i).has_value());
    EXPECT_TRUE(parent->get(store::Kind::kRewards, 2000 + i).has_value());
    EXPECT_TRUE(
        parent->get(store::Kind::kRewardTable, 3000 + i).has_value());
  }
  EXPECT_EQ(parent->stats().entries, 3u * kEntries);
}

// ---------------------------------------------------------------------------
// Warm starts: the disk tier must replace recomputation after a "restart"
// (in-memory caches wiped, global store reopened on the same directory).

class StoreWarmStart : public ::testing::Test {
 protected:
  void SetUp() override {
    store::close_global();
    core::clear_stage_caches();
    core::ReliabilityAnalyzer::cache().clear();
  }
  void TearDown() override {
    store::close_global();
    core::clear_stage_caches();
    core::ReliabilityAnalyzer::cache().clear();
  }

  void open_global(const ScratchDir& dir) {
    std::string error;
    ASSERT_TRUE(store::open_global(dir.str(), store::Options{}, &error))
        << error;
  }

  /// Simulates a process restart: every in-memory tier gone, the same
  /// store directory reopened.
  void restart(const ScratchDir& dir) {
    store::close_global();
    core::clear_stage_caches();
    core::ReliabilityAnalyzer::cache().clear();
    open_global(dir);
  }
};

TEST_F(StoreWarmStart, AnalyzerRestartsWarmWithZeroSolves) {
  ScratchDir dir("nvp_store_warm_analyzer");
  open_global(dir);
  const core::ReliabilityAnalyzer analyzer;
  const auto params = core::SystemParameters::paper_six_version();
  const core::AnalysisResult cold = analyzer.analyze(params);
  EXPECT_GT(counter_value("store.write"), 0u);

  restart(dir);
  const std::uint64_t solves_before = solve_count();
  const std::uint64_t builds_before = counter_value(
      "petri.reachability.builds");
  const std::uint64_t hits_before = counter_value("store.hit");
  const core::AnalysisResult warm = analyzer.analyze(params);

  EXPECT_EQ(solve_count(), solves_before) << "warm analyze re-solved";
  EXPECT_EQ(counter_value("petri.reachability.builds"), builds_before)
      << "warm analyze re-explored";
  EXPECT_GT(counter_value("store.hit"), hits_before);
  EXPECT_EQ(warm.expected_reliability, cold.expected_reliability);
  ASSERT_EQ(warm.state_distribution.size(), cold.state_distribution.size());
  for (std::size_t i = 0; i < cold.state_distribution.size(); ++i)
    EXPECT_EQ(warm.state_distribution[i].probability,
              cold.state_distribution[i].probability);
}

TEST_F(StoreWarmStart, ServiceRestartsWarmFromTheStore) {
  ScratchDir dir("nvp_store_warm_nvpd");
  open_global(dir);
  const std::string request =
      R"({"id":1,"method":"analyze","params":{"paper":"6v"}})";

  double cold_value = 0.0;
  {
    service::Server::Options options;
    options.port = 0;
    options.workers = 1;
    service::Server server(options);
    server.start();
    service::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
    const auto response = client.call(1, request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    ASSERT_TRUE(response->ok);
    cold_value = response->result->number_or("expected_reliability", -1.0);
    server.shutdown();
  }

  restart(dir);
  const std::uint64_t solves_before = solve_count();
  {
    service::Server::Options options;
    options.port = 0;
    options.workers = 1;
    service::Server server(options);
    server.start();
    service::Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
    const auto response = client.call(1, request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    ASSERT_TRUE(response->ok);
    EXPECT_EQ(response->result->number_or("expected_reliability", -1.0),
              cold_value);
    server.shutdown();
  }
  EXPECT_EQ(solve_count(), solves_before)
      << "restarted daemon re-solved instead of reading the store";
}

}  // namespace
}  // namespace nvp
