// Tests for the core::Engine facade: every entry point must be
// bit-identical to the direct-call path it fronts, and the RunResult
// envelope must carry provenance and metrics.

#include <gtest/gtest.h>

#include "src/core/engine.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/reliability.hpp"
#include "src/obs/manifest.hpp"
#include "src/sim/dspn_simulator.hpp"

namespace {

using namespace nvp;

core::SystemParameters four_version() {
  return core::SystemParameters::paper_four_version();
}
core::SystemParameters six_version() {
  return core::SystemParameters::paper_six_version();
}

TEST(Engine, AnalyzeMatchesDirectPathBitIdentical) {
  const core::Engine engine;
  const core::ReliabilityAnalyzer analyzer;
  for (const auto& params : {four_version(), six_version()}) {
    const auto direct = analyzer.analyze(params);
    const auto result = engine.analyze(params);
    EXPECT_TRUE(result.analytic);
    EXPECT_FALSE(result.simulated);
    EXPECT_EQ(result.analysis.expected_reliability,
              direct.expected_reliability);
    EXPECT_EQ(result.analysis.tangible_states, direct.tangible_states);
    EXPECT_EQ(result.analysis.used_dspn_solver, direct.used_dspn_solver);
    ASSERT_EQ(result.analysis.state_distribution.size(),
              direct.state_distribution.size());
    for (std::size_t i = 0; i < direct.state_distribution.size(); ++i)
      EXPECT_EQ(result.analysis.state_distribution[i].probability,
                direct.state_distribution[i].probability);
  }
}

TEST(Engine, AnalyzeRespectsAnalyzerOptions) {
  core::ReliabilityAnalyzer::Options options;
  options.convention = core::RewardConvention::kGeneralized;
  const core::Engine engine(options);
  const core::ReliabilityAnalyzer analyzer(options);
  const auto params = six_version();
  EXPECT_EQ(engine.analyze_raw(params).expected_reliability,
            analyzer.analyze(params).expected_reliability);
}

TEST(Engine, SimulateMatchesDirectPathBitIdentical) {
  const auto params = six_version();
  core::Engine::SimulateOptions options;
  options.horizon = 2e4;
  options.seed = 7;
  options.replications = 4;

  const core::Engine engine;
  const auto result = engine.simulate(params, options);
  EXPECT_TRUE(result.simulated);
  EXPECT_FALSE(result.analytic);

  // Direct path: same model, same reward, same replication schedule.
  const auto model = core::PerceptionModelFactory::build(params);
  const auto rewards = core::make_reliability_model(params);
  const sim::DspnSimulator simulator(model.net);
  sim::SimulationOptions direct_options;
  direct_options.horizon = options.horizon;
  direct_options.warmup_time = options.horizon / 100.0;
  direct_options.seed = options.seed;
  const auto direct = simulator.estimate(
      [&](const petri::Marking& m) {
        return rewards->state_reliability(model.healthy(m),
                                          model.compromised(m),
                                          model.down(m));
      },
      direct_options, options.replications);
  EXPECT_EQ(result.estimate.mean, direct.mean);
  EXPECT_EQ(result.estimate.ci.lo, direct.ci.lo);
  EXPECT_EQ(result.estimate.ci.hi, direct.ci.hi);
}

TEST(Engine, SimulateTracksAnalyticEstimate) {
  // The facade's reward model matches the analyzer's convention, so the
  // simulation estimates the same quantity analyze() solves for.
  const core::Engine engine;
  const auto params = four_version();
  core::Engine::SimulateOptions options;
  options.horizon = 5e4;
  options.replications = 8;
  const auto simulated = engine.simulate(params, options);
  const auto analytic = engine.analyze_raw(params);
  EXPECT_NEAR(simulated.estimate.mean, analytic.expected_reliability, 0.05);
}

TEST(Engine, SweepMatchesFreeFunction) {
  const core::Engine engine;
  const core::ReliabilityAnalyzer analyzer;
  const auto values = core::linspace(200.0, 1200.0, 6);
  const auto via_engine = engine.sweep(
      six_version(), core::set_rejuvenation_interval(), values);
  const auto direct = core::sweep_parameter(
      analyzer, six_version(), core::set_rejuvenation_interval(), values);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i].x, direct[i].x);
    EXPECT_EQ(via_engine[i].expected_reliability,
              direct[i].expected_reliability);
  }
}

TEST(Engine, CrossoversMatchFreeFunction) {
  const core::Engine engine;
  const core::ReliabilityAnalyzer analyzer;
  const auto values = core::linspace(0.1, 0.9, 9);
  const auto via_engine =
      engine.crossovers(four_version(), six_version(),
                        core::set_p_prime(), values, 0.01);
  const auto direct =
      core::find_crossovers(analyzer, four_version(), six_version(),
                            core::set_p_prime(), values, 0.01);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(via_engine[i].x, direct[i].x);
}

TEST(Engine, OptimizeMatchesFreeFunction) {
  const core::Engine engine;
  const core::ReliabilityAnalyzer analyzer;
  const auto via_engine =
      engine.optimize_rejuvenation_interval(six_version(), 200.0, 1500.0);
  const auto direct = core::optimize_rejuvenation_interval(
      analyzer, six_version(), 200.0, 1500.0, 24, 0.5);
  EXPECT_EQ(via_engine.x, direct.x);
  EXPECT_EQ(via_engine.expected_reliability, direct.expected_reliability);
}

TEST(Engine, SensitivityMatchesFreeFunction) {
  const core::Engine engine;
  const core::ReliabilityAnalyzer analyzer;
  const auto via_engine = engine.sensitivity(six_version(), 0.1);
  const auto direct = core::sensitivity_report(analyzer, six_version(), 0.1);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i].parameter, direct[i].parameter);
    EXPECT_EQ(via_engine[i].elasticity, direct[i].elasticity);
  }
}

TEST(Engine, ArchitecturesMatchExplorer) {
  core::ArchitectureSpaceExplorer::Options options;
  options.max_versions = 6;
  const core::Engine engine;
  const auto via_engine = engine.architectures(six_version(), options);
  const auto direct =
      core::ArchitectureSpaceExplorer(options).explore(six_version());
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i].n, direct[i].n);
    EXPECT_EQ(via_engine[i].expected_reliability,
              direct[i].expected_reliability);
  }
}

TEST(Engine, RunResultCarriesProvenanceAndMetrics) {
  const core::Engine engine;
  const auto params = six_version();
  const auto result = engine.analyze(params);
  EXPECT_EQ(result.provenance.entry, "analyze");
  EXPECT_EQ(result.provenance.params, params.describe());
  EXPECT_EQ(result.provenance.git_sha, obs::build_git_sha());
  EXPECT_GT(result.provenance.jobs, 0u);
  // The analyzer counters ticked during this run, so the envelope's
  // metrics snapshot must mention them.
  EXPECT_TRUE(result.metrics.counters.count("core.analyzer.solves") == 1 ||
              result.metrics.counters.count("core.analysis_cache.hits") ==
                  1);

  core::Engine::SimulateOptions sim_options;
  sim_options.horizon = 1e4;
  sim_options.seed = 42;
  sim_options.replications = 2;
  const auto simulated = engine.simulate(params, sim_options);
  EXPECT_EQ(simulated.provenance.entry, "simulate");
  EXPECT_EQ(simulated.provenance.seed, 42u);

  const auto snapshot = engine.snapshot("sweep", params, 9);
  EXPECT_EQ(snapshot.provenance.entry, "sweep");
  EXPECT_EQ(snapshot.provenance.seed, 9u);
  EXPECT_FALSE(snapshot.analytic);
  EXPECT_FALSE(snapshot.simulated);
}

}  // namespace
