// Randomized cross-validation: generate random (but live) DSPNs and check
// that the analytic stationary solution agrees with the discrete-event
// simulation — the strongest end-to-end property the solver stack offers.

#include <gtest/gtest.h>

#include "src/markov/dspn_solver.hpp"
#include "src/markov/rewards.hpp"
#include "src/petri/reachability.hpp"
#include "src/sim/dspn_simulator.hpp"
#include "src/util/rng.hpp"

namespace nvp {
namespace {

/// Random conservative net: a ring of places (guaranteeing every token can
/// circulate) plus random chords, all exponential with random rates;
/// optionally a deterministic "maintenance clock" with an immediate reset
/// that teleports one random place's tokens to the ring head.
petri::PetriNet random_net(std::uint64_t seed, bool with_deterministic) {
  util::RandomStream rng(seed);
  petri::PetriNet net("fuzz" + std::to_string(seed));

  const int places = 2 + static_cast<int>(rng.uniform_index(3));  // 2..4
  std::vector<petri::PlaceId> ring;
  for (int p = 0; p < places; ++p)
    ring.push_back(net.add_place("P" + std::to_string(p),
                                 p == 0 ? 1 + static_cast<int>(
                                                  rng.uniform_index(3))
                                        : 0));

  // Ring transitions keep the chain irreducible.
  for (int p = 0; p < places; ++p) {
    const auto t = net.add_exponential(
        "ring" + std::to_string(p), rng.uniform(0.05, 2.0));
    net.add_input_arc(t, ring[static_cast<std::size_t>(p)]);
    net.add_output_arc(t,
                       ring[static_cast<std::size_t>((p + 1) % places)]);
  }
  // Random chords.
  const int chords = static_cast<int>(rng.uniform_index(3));
  for (int c = 0; c < chords; ++c) {
    const auto from = rng.uniform_index(static_cast<std::size_t>(places));
    auto to = rng.uniform_index(static_cast<std::size_t>(places));
    if (to == from) to = (to + 1) % static_cast<std::size_t>(places);
    const auto t = net.add_exponential("chord" + std::to_string(c),
                                       rng.uniform(0.05, 1.0));
    net.add_input_arc(t, ring[from]);
    net.add_output_arc(t, ring[to]);
  }

  if (with_deterministic) {
    const auto armed = net.add_place("armed", 1);
    const auto expired = net.add_place("expired", 0);
    const auto tick =
        net.add_deterministic("tick", rng.uniform(1.0, 20.0));
    net.add_input_arc(tick, armed);
    net.add_output_arc(tick, expired);
    // Maintenance: move every token of one random place to the ring head,
    // then re-arm (immediate, fires exactly once per expiry).
    const auto victim = ring[rng.uniform_index(ring.size())];
    const auto fix = net.add_immediate("fix");
    net.add_input_arc(fix, expired);
    net.add_output_arc(fix, armed);
    if (victim.index != ring[0].index) {
      net.add_input_arc(fix, victim, [victim](const petri::Marking& m) {
        return m[victim.index];
      });
      net.add_output_arc(fix, ring[0], [victim](const petri::Marking& m) {
        return m[victim.index];
      });
    }
  }
  return net;
}

class FuzzSolverVsSimulator
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(FuzzSolverVsSimulator, StationaryRewardAgrees) {
  const auto [seed, with_det] = GetParam();
  const auto net = random_net(seed, with_det);
  const auto graph = petri::TangibleReachabilityGraph::build(net);
  const auto solution = markov::DspnSteadyStateSolver().solve(graph);

  // Reward: token count in P0 (plus an indicator to vary the shape).
  const auto p0 = net.place("P0");
  const markov::MarkingReward reward = [p0](const petri::Marking& m) {
    return static_cast<double>(m[p0.index]) +
           (m[p0.index] > 0 ? 0.5 : 0.0);
  };
  double analytic = 0.0;
  for (std::size_t s = 0; s < graph.size(); ++s)
    analytic += solution.probabilities[s] * reward(graph.marking(s));

  sim::DspnSimulator simulator(net);
  sim::SimulationOptions options;
  options.warmup_time = 500.0;
  options.horizon = 2.0e5;
  options.seed = seed ^ 0xF00DULL;
  const auto estimate = simulator.estimate(reward, options, 8);

  EXPECT_NEAR(estimate.mean, analytic,
              std::max(5.0 * estimate.std_error, 0.02))
      << "net:\n"
      << petri::to_string(net.initial_marking());
}

INSTANTIATE_TEST_SUITE_P(
    RandomNets, FuzzSolverVsSimulator,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, bool>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "det" : "exp");
    });

}  // namespace
}  // namespace nvp
