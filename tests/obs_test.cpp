// Tests for src/obs/: metric aggregation across threads, trace span
// nesting and parenting, JSON writing/validation, and run-manifest
// round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/manifest.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/thread_pool.hpp"

namespace {

using namespace nvp;

// --- metrics ---------------------------------------------------------------

TEST(ObsCounter, AggregatesAcrossThreads) {
  obs::Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsCounter, AddHonorsIncrement) {
  obs::Counter counter;
  counter.add(5);
  counter.add(7);
  EXPECT_EQ(counter.value(), 12u);
}

TEST(ObsCounter, DisabledRecordsNothing) {
  obs::Counter counter;
  obs::set_enabled(false);
  counter.add(100);
  obs::set_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge gauge;
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

TEST(ObsHistogram, BucketsArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(-3.0), 0u);
  // Every value lands in a bucket whose upper bound covers it, and buckets
  // are monotone in the value.
  for (double v : {1e-4, 0.5, 1.0, 1.5, 3.0, 1000.0}) {
    const std::size_t b = obs::Histogram::bucket_of(v);
    EXPECT_GE(obs::Histogram::bucket_bound(b), v) << v;
  }
  EXPECT_LT(obs::Histogram::bucket_of(0.5), obs::Histogram::bucket_of(3.0));
  EXPECT_EQ(obs::Histogram::bucket_of(1.5), obs::Histogram::bucket_of(1.9));
  // Out-of-range values clamp to the edge buckets.
  EXPECT_EQ(obs::Histogram::bucket_of(1e300),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_of(1e-300), 0u);
}

TEST(ObsHistogram, SnapshotAggregatesAcrossThreads) {
  obs::Histogram histogram;
  // parallel_for across the runtime pool: every worker records.
  runtime::parallel_for(1000, [&](std::size_t i) {
    histogram.observe(static_cast<double>(i % 10) + 0.5);
  });
  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 1000u);
  EXPECT_NEAR(snapshot.sum, 100 * (0.5 + 1.5 + 2.5 + 3.5 + 4.5 + 5.5 + 6.5 +
                                   7.5 + 8.5 + 9.5),
              1e-9);
  EXPECT_GT(snapshot.p50, 0.0);
  EXPECT_LE(snapshot.p50, snapshot.p90);
  EXPECT_LE(snapshot.p90, snapshot.p99);
}

TEST(ObsRegistry, SameNameSameMetric) {
  auto& registry = obs::Registry::global();
  obs::Counter& a = registry.counter("obs_test.same_name");
  obs::Counter& b = registry.counter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  b.add(3);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("obs_test.same_name"), 3u);
}

// --- trace spans -----------------------------------------------------------

TEST(ObsTrace, SpansNestAndParent) {
  obs::set_tracing(true);
  obs::TraceRecorder::global().clear();
  {
    obs::ScopedSpan outer("outer");
    {
      obs::ScopedSpan inner("inner");
      obs::ScopedSpan innermost("innermost");
      EXPECT_NE(inner.id(), 0u);
      EXPECT_NE(innermost.id(), 0u);
    }
    obs::ScopedSpan sibling("sibling");
  }
  obs::set_tracing(false);
  const auto records = obs::TraceRecorder::global().finished();
  ASSERT_EQ(records.size(), 4u);

  auto find = [&](const std::string& name) {
    for (const auto& r : records)
      if (r.name == name) return r;
    ADD_FAILURE() << "span not recorded: " << name;
    return obs::SpanRecord{};
  };
  const auto outer = find("outer");
  const auto inner = find("inner");
  const auto innermost = find("innermost");
  const auto sibling = find("sibling");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(innermost.parent, inner.id);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_GE(outer.wall_s, inner.wall_s);
  obs::TraceRecorder::global().clear();
}

TEST(ObsTrace, DisabledSpansAreInert) {
  obs::set_tracing(false);
  obs::TraceRecorder::global().clear();
  {
    obs::ScopedSpan span("invisible");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_TRUE(obs::TraceRecorder::global().finished().empty());
}

TEST(ObsTrace, TreeRenderings) {
  obs::set_tracing(true);
  obs::TraceRecorder::global().clear();
  {
    obs::ScopedSpan outer("parent");
    obs::ScopedSpan inner("child");
  }
  obs::set_tracing(false);
  const auto records = obs::TraceRecorder::global().finished();
  const std::string json = obs::span_tree_json(records);
  EXPECT_TRUE(obs::json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  const std::string text = obs::span_tree_text(records);
  EXPECT_NE(text.find("parent"), std::string::npos);
  EXPECT_NE(text.find("child"), std::string::npos);
  obs::TraceRecorder::global().clear();
}

// --- JSON writer / validator -----------------------------------------------

TEST(ObsJson, WriterProducesValidDocuments) {
  obs::JsonWriter json;
  json.begin_object();
  json.kv("name", "quote\"back\\slash\nnewline");
  json.kv("count", std::uint64_t{42});
  json.kv("ratio", 0.25);
  json.kv("flag", true);
  json.key("list").begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  json.key("nan_is_null").value(std::nan(""));
  json.end_object();
  EXPECT_TRUE(obs::json_is_valid(json.str())) << json.str();
  EXPECT_NE(json.str().find("\\n"), std::string::npos);
  EXPECT_NE(json.str().find("null"), std::string::npos);
}

TEST(ObsJson, ValidatorRejectsMalformedText) {
  EXPECT_TRUE(obs::json_is_valid("{}"));
  EXPECT_TRUE(obs::json_is_valid("[1, 2.5, -3e4, \"x\", null, true]"));
  EXPECT_FALSE(obs::json_is_valid(""));
  EXPECT_FALSE(obs::json_is_valid("{"));
  EXPECT_FALSE(obs::json_is_valid("{\"a\":}"));
  EXPECT_FALSE(obs::json_is_valid("[1,]"));
  EXPECT_FALSE(obs::json_is_valid("{\"a\":1} trailing"));
  EXPECT_FALSE(obs::json_is_valid("-"));
}

// --- run manifest ----------------------------------------------------------

TEST(ObsManifest, CaptureAndRoundTrip) {
  obs::set_tracing(true);
  obs::TraceRecorder::global().clear();
  auto& counter = obs::Registry::global().counter("obs_test.manifest");
  counter.reset();
  { obs::ScopedSpan span("obs_test.work"); counter.add(7); }
  obs::set_tracing(false);

  obs::RunManifest manifest;
  manifest.tool = "obs_test";
  manifest.command = "obs_test --fake";
  manifest.params["paper"] = "6v";
  manifest.seed = 123;
  manifest.jobs = 4;
  manifest.capture();

  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.timestamp_utc.empty());
  EXPECT_GT(manifest.peak_rss_bytes, 0);
  EXPECT_EQ(manifest.metrics.counters.at("obs_test.manifest"), 7u);
  ASSERT_FALSE(manifest.spans.empty());

  const std::string json = manifest.to_json();
  EXPECT_TRUE(obs::json_is_valid(json)) << json;
  for (const char* key :
       {"\"tool\"", "\"command\"", "\"params\"", "\"seed\"", "\"jobs\"",
        "\"git_sha\"", "\"timestamp_utc\"", "\"peak_rss_bytes\"",
        "\"metrics\"", "\"spans\"", "\"obs_test.work\"",
        "\"obs_test.manifest\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  const std::string path = "obs_test_manifest.json";
  manifest.write(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());
  obs::TraceRecorder::global().clear();
}

}  // namespace
