// Slow-tier MRGP scaling checks: the matrix-free backend must handle the
// 6-version-with-rejuvenation families at N = 40..100 (10^4..10^5 tangible
// states) that the dense path cannot touch, and its answers must stay
// internally consistent (probability simplex, agreement with the explicit
// sparse assembly at a mid-size point, reward sanity end to end).

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/solver_config.hpp"
#include "src/petri/reachability.hpp"

namespace nvp {
namespace {

core::SystemParameters family(int n, int f, int r) {
  auto params = core::SystemParameters::paper_six_version();
  params.n_versions = n;
  params.max_faulty = f;
  params.max_rejuvenating = r;
  params.validate();
  return params;
}

petri::TangibleReachabilityGraph graph_for(const core::SystemParameters& p) {
  const auto model = core::PerceptionModelFactory::build(p);
  return petri::TangibleReachabilityGraph::build(model.net);
}

void expect_simplex(const linalg::Vector& pi, const char* label) {
  double total = 0.0;
  for (double v : pi) {
    EXPECT_GE(v, 0.0) << label;
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9) << label;
}

TEST(MrgpScalingSlowTest, MidSizeFamilyMatchesExplicitSparseAssembly) {
  // Big enough that dense LU is already painful, small enough that the
  // explicit CSR embedded chain still fits: the two independent MRGP
  // constructions must agree.
  const auto params = family(24, 2, 2);
  const auto g = graph_for(params);
  ASSERT_TRUE(g.has_deterministic());

  markov::SolverConfig sparse;
  sparse.backend = markov::SolverBackend::kSparse;
  const auto explicit_result = markov::DspnSteadyStateSolver(sparse).solve(g);

  markov::SolverConfig mfree;
  mfree.backend = markov::SolverBackend::kMatrixFree;
  const auto mfree_result = markov::DspnSteadyStateSolver(mfree).solve(g);

  ASSERT_EQ(explicit_result.probabilities.size(),
            mfree_result.probabilities.size());
  for (std::size_t i = 0; i < mfree_result.probabilities.size(); ++i)
    EXPECT_NEAR(mfree_result.probabilities[i],
                explicit_result.probabilities[i], 1e-9)
        << "state " << i;
}

TEST(MrgpScalingSlowTest, LargeFamiliesSolveMatrixFree) {
  // The headline capability: families the dense assembly cannot represent
  // (two n^2 matrices at n ~ 10^4 would be gigabytes). kAuto must route
  // them to the matrix-free backend and produce a valid distribution.
  // The rejuvenation budget r drives the state count (the fault budget f
  // only caps the voter): r = 4 puts N = 40..100 at 10^4..10^5 states.
  for (const int n : {40, 64}) {
    const auto params = family(n, 2, 4);
    const auto g = graph_for(params);
    ASSERT_TRUE(g.has_deterministic()) << "N=" << n;
    ASSERT_GE(g.size(), 10000u) << "N=" << n;

    markov::SolverConfig config;  // kAuto
    const auto result = markov::DspnSteadyStateSolver(config).solve(g);
    EXPECT_EQ(result.backend_used, markov::SolverBackend::kMatrixFree)
        << "N=" << n;
    expect_simplex(result.probabilities, "large family");
    // Operator storage stays sparse: far below one dense matrix, let alone
    // the two the dense backend materializes.
    EXPECT_LT(result.matrix_nonzeros, g.size() * 64) << "N=" << n;
  }
}

TEST(MrgpScalingSlowTest, EndToEndReliabilityStaysInUnitInterval) {
  // The full analyzer pipeline (staged structure, lumped warm start,
  // rewards) on a family well beyond the dense ceiling.
  core::ReliabilityAnalyzer::Options options;
  options.use_cache = false;
  const auto analysis =
      core::ReliabilityAnalyzer(options).analyze(family(40, 2, 2));
  EXPECT_EQ(analysis.backend_used, markov::SolverBackend::kMatrixFree);
  EXPECT_GT(analysis.expected_reliability, 0.0);
  EXPECT_LE(analysis.expected_reliability, 1.0);
}

}  // namespace
}  // namespace nvp
