#include <gtest/gtest.h>

#include <cmath>

#include "src/petri/dot_export.hpp"
#include "src/petri/net.hpp"
#include "src/petri/reachability.hpp"
#include "src/petri/structural.hpp"
#include "src/util/contracts.hpp"

namespace nvp::petri {
namespace {

/// M/M/1/K queue as a net: arrivals (rate 2) bounded by an inhibitor arc,
/// services (rate 3).
PetriNet mm1k_net(TokenCount capacity) {
  PetriNet net("mm1k");
  const auto queue = net.add_place("queue", 0);
  const auto arrive = net.add_exponential("arrive", 2.0);
  net.add_output_arc(arrive, queue);
  net.add_inhibitor_arc(arrive, queue, capacity);
  const auto serve = net.add_exponential("serve", 3.0);
  net.add_input_arc(serve, queue);
  return net;
}

TEST(Net, PlaceAndTransitionLookup) {
  PetriNet net;
  const auto p = net.add_place("P1", 2);
  const auto t = net.add_exponential("T1", 1.0);
  net.add_input_arc(t, p);
  EXPECT_EQ(net.place("P1").index, p.index);
  EXPECT_EQ(net.transition_id("T1").index, t.index);
  EXPECT_THROW(net.place("nope"), NetError);
  EXPECT_THROW(net.transition_id("nope"), NetError);
  EXPECT_EQ(net.initial_marking()[p.index], 2);
}

TEST(Net, RejectsDuplicateAndInvalidDefinitions) {
  PetriNet net;
  net.add_place("P", 0);
  EXPECT_THROW(net.add_place("P", 0), NetError);
  EXPECT_THROW(net.add_exponential("bad", 0.0), NetError);
  EXPECT_THROW(net.add_exponential("bad", -1.0), NetError);
  EXPECT_THROW(net.add_immediate("bad", 0.0), NetError);
  EXPECT_THROW(net.add_deterministic("bad", -2.0), NetError);
}

TEST(Net, EnablednessRespectsInputArcs) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, p, 2);
  EXPECT_FALSE(net.is_enabled(t.index, net.initial_marking()));
  net.set_initial_tokens(p, 2);
  EXPECT_TRUE(net.is_enabled(t.index, net.initial_marking()));
}

TEST(Net, EnablednessRespectsInhibitors) {
  PetriNet net;
  const auto p = net.add_place("P", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_inhibitor_arc(t, p, 1);
  EXPECT_TRUE(net.is_enabled(t.index, net.initial_marking()));
  net.set_initial_tokens(p, 1);
  EXPECT_FALSE(net.is_enabled(t.index, net.initial_marking()));
}

TEST(Net, EnablednessRespectsGuards) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, p);
  net.set_guard(t, [](const Marking& m) { return m[0] >= 2; });
  EXPECT_FALSE(net.is_enabled(t.index, net.initial_marking()));
  net.set_initial_tokens(p, 2);
  EXPECT_TRUE(net.is_enabled(t.index, net.initial_marking()));
}

TEST(Net, FireMovesTokensAtomically) {
  PetriNet net;
  const auto a = net.add_place("A", 3);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, a, 2);
  net.add_output_arc(t, b, 5);
  const auto next = net.fire(t.index, net.initial_marking());
  EXPECT_EQ(next[a.index], 1);
  EXPECT_EQ(next[b.index], 5);
}

TEST(Net, FireDisabledThrows) {
  PetriNet net;
  const auto a = net.add_place("A", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, a);
  EXPECT_THROW(net.fire(t.index, net.initial_marking()), NetError);
}

TEST(Net, MarkingDependentArcWeightsEvaluateOnPreFiringMarking) {
  PetriNet net;
  const auto a = net.add_place("A", 4);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("T", 1.0);
  // Consume all tokens of A, produce the same count in B.
  net.add_input_arc(t, a, [a](const Marking& m) { return m[a.index]; });
  net.add_output_arc(t, b, [a](const Marking& m) { return m[a.index]; });
  const auto next = net.fire(t.index, net.initial_marking());
  EXPECT_EQ(next[a.index], 0);
  EXPECT_EQ(next[b.index], 4);
}

TEST(Net, MarkingDependentRate) {
  PetriNet net;
  const auto a = net.add_place("A", 3);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, a);
  net.set_rate_fn(t, [a](const Marking& m) {
    return 2.0 * static_cast<double>(m[a.index]);
  });
  EXPECT_DOUBLE_EQ(net.rate_or_weight(t.index, net.initial_marking()), 6.0);
}

TEST(Net, NonPositiveRateWhenEnabledThrows) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, a);
  net.set_rate_fn(t, [](const Marking&) { return 0.0; });
  EXPECT_THROW(net.rate_or_weight(t.index, net.initial_marking()), NetError);
}

TEST(Net, ImmediatePrioritySelection) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto low = net.add_immediate("low", 1.0, 1);
  const auto high = net.add_immediate("high", 1.0, 5);
  net.add_input_arc(low, a);
  net.add_input_arc(high, a);
  const auto enabled = net.enabled_immediates(net.initial_marking());
  ASSERT_EQ(enabled.size(), 1u);
  EXPECT_EQ(enabled[0], high.index);
}

TEST(Net, DeterministicDelayAccessor) {
  PetriNet net;
  net.add_place("P", 1);
  const auto d = net.add_deterministic("D", 4.5);
  EXPECT_DOUBLE_EQ(net.deterministic_delay(d.index), 4.5);
  EXPECT_THROW(net.set_rate_fn(d, [](const Marking&) { return 1.0; }),
               NetError);
}

TEST(Net, VanishingDetection) {
  PetriNet net;
  const auto p = net.add_place("P", 0);
  const auto imm = net.add_immediate("imm");
  net.add_input_arc(imm, p);
  EXPECT_FALSE(net.is_vanishing(net.initial_marking()));
  net.set_initial_tokens(p, 1);
  EXPECT_TRUE(net.is_vanishing(net.initial_marking()));
}

// ---- reachability ------------------------------------------------------------

TEST(Reachability, Mm1kStateSpace) {
  const auto net = mm1k_net(5);
  const auto g = TangibleReachabilityGraph::build(net);
  EXPECT_EQ(g.size(), 6u);  // 0..5 customers
  EXPECT_FALSE(g.has_deterministic());
  // State with 0 customers: only arrival (rate 2).
  const auto s0 = g.find({0});
  ASSERT_TRUE(s0.has_value());
  ASSERT_EQ(g.exponential_edges(*s0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.exponential_edges(*s0)[0].rate, 2.0);
  // Full state: only service.
  const auto s5 = g.find({5});
  ASSERT_TRUE(s5.has_value());
  ASSERT_EQ(g.exponential_edges(*s5).size(), 1u);
  EXPECT_DOUBLE_EQ(g.exponential_edges(*s5)[0].rate, 3.0);
}

TEST(Reachability, VanishingEliminationSplitsByWeight) {
  // A timed transition feeds a token that an immediate conflict routes to
  // either L (weight 1) or R (weight 3).
  PetriNet net;
  const auto src = net.add_place("src", 1);
  const auto mid = net.add_place("mid", 0);
  const auto left = net.add_place("L", 0);
  const auto right = net.add_place("R", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, src);
  net.add_output_arc(t, mid);
  const auto il = net.add_immediate("IL", 1.0);
  net.add_input_arc(il, mid);
  net.add_output_arc(il, left);
  const auto ir = net.add_immediate("IR", 3.0);
  net.add_input_arc(ir, mid);
  net.add_output_arc(ir, right);

  const auto g = TangibleReachabilityGraph::build(net);
  const auto s0 = g.find({1, 0, 0, 0});
  ASSERT_TRUE(s0.has_value());
  const auto& edges = g.exponential_edges(*s0);
  ASSERT_EQ(edges.size(), 2u);
  double rate_left = 0.0, rate_right = 0.0;
  for (const auto& e : edges) {
    if (g.marking(e.target)[left.index] == 1) rate_left = e.rate;
    if (g.marking(e.target)[right.index] == 1) rate_right = e.rate;
  }
  EXPECT_NEAR(rate_left, 0.25, 1e-12);
  EXPECT_NEAR(rate_right, 0.75, 1e-12);
}

TEST(Reachability, VanishingInitialMarkingResolved) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto imm = net.add_immediate("I");
  net.add_input_arc(imm, a);
  net.add_output_arc(imm, b);
  const auto serve = net.add_exponential("S", 1.0);
  net.add_input_arc(serve, b);
  net.add_output_arc(serve, a);
  const auto g = TangibleReachabilityGraph::build(net);
  ASSERT_EQ(g.initial_distribution().size(), 1u);
  EXPECT_EQ(g.marking(g.initial_distribution()[0].target)[b.index], 1);
}

TEST(Reachability, ImmediateCycleRejected) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto ab = net.add_immediate("ab");
  net.add_input_arc(ab, a);
  net.add_output_arc(ab, b);
  const auto ba = net.add_immediate("ba");
  net.add_input_arc(ba, b);
  net.add_output_arc(ba, a);
  EXPECT_THROW(TangibleReachabilityGraph::build(net), NetError);
}

TEST(Reachability, StateLimitEnforced) {
  // Unbounded net: a source transition with no input.
  PetriNet net;
  const auto p = net.add_place("P", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_output_arc(t, p);
  ReachabilityOptions opts;
  opts.max_tangible_states = 50;
  EXPECT_THROW(TangibleReachabilityGraph::build(net, opts), NetError);
}

TEST(Reachability, DeterministicInfoCaptured) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto d = net.add_deterministic("D", 10.0);
  net.add_input_arc(d, a);
  net.add_output_arc(d, b);
  const auto back = net.add_exponential("back", 0.5);
  net.add_input_arc(back, b);
  net.add_output_arc(back, a);
  const auto g = TangibleReachabilityGraph::build(net);
  EXPECT_TRUE(g.has_deterministic());
  const auto s0 = g.find({1, 0});
  ASSERT_TRUE(s0.has_value());
  ASSERT_EQ(g.deterministics(*s0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.deterministics(*s0)[0].delay, 10.0);
  ASSERT_EQ(g.deterministics(*s0)[0].edges.size(), 1u);
  EXPECT_EQ(g.marking(g.deterministics(*s0)[0].edges[0].target)[b.index], 1);
}

TEST(Reachability, ExitRateSumsEdges) {
  const auto net = mm1k_net(3);
  const auto g = TangibleReachabilityGraph::build(net);
  const auto s1 = g.find({1});
  ASSERT_TRUE(s1.has_value());
  EXPECT_DOUBLE_EQ(g.exit_rate(*s1), 5.0);  // arrive 2 + serve 3
}

// ---- structural ----------------------------------------------------------------

TEST(Structural, TokenInvariantHoldsForConservativeNet) {
  // Closed cycle of 3 places conserves tokens.
  PetriNet net;
  const auto a = net.add_place("A", 2);
  const auto b = net.add_place("B", 0);
  const auto c = net.add_place("C", 0);
  for (auto [from, to, name] :
       {std::tuple{a, b, "t1"}, {b, c, "t2"}, {c, a, "t3"}}) {
    const auto t = net.add_exponential(name, 1.0);
    net.add_input_arc(t, from);
    net.add_output_arc(t, to);
  }
  const auto g = TangibleReachabilityGraph::build(net);
  const auto rep = check_token_invariant(g, {1.0, 1.0, 1.0});
  EXPECT_TRUE(rep.holds);
  EXPECT_DOUBLE_EQ(rep.expected, 2.0);
}

TEST(Structural, TokenInvariantViolationReported) {
  const auto net = mm1k_net(3);  // queue length varies
  const auto g = TangibleReachabilityGraph::build(net);
  const auto rep = check_token_invariant(g, {1.0});
  EXPECT_FALSE(rep.holds);
}

TEST(Structural, PlaceBounds) {
  const auto net = mm1k_net(4);
  const auto g = TangibleReachabilityGraph::build(net);
  const auto bounds = place_bounds(g);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0], 4);
}

TEST(Structural, GraphStatsDescribe) {
  const auto net = mm1k_net(2);
  const auto g = TangibleReachabilityGraph::build(net);
  const auto stats = graph_stats(g);
  EXPECT_EQ(stats.states, 3u);
  EXPECT_EQ(stats.absorbing_states, 0u);
  EXPECT_DOUBLE_EQ(stats.max_exit_rate, 5.0);
  EXPECT_FALSE(describe(stats).empty());
}

// ---- dot export -----------------------------------------------------------------

TEST(DotExport, ContainsAllNodes) {
  const auto net = mm1k_net(2);
  const std::string dot = to_dot(net);
  EXPECT_NE(dot.find("queue"), std::string::npos);
  EXPECT_NE(dot.find("arrive"), std::string::npos);
  EXPECT_NE(dot.find("odot"), std::string::npos);  // inhibitor arrowhead
  const auto g = TangibleReachabilityGraph::build(net);
  const std::string rg = to_dot(net, g);
  EXPECT_NE(rg.find("s0"), std::string::npos);
  EXPECT_NE(rg.find("s2"), std::string::npos);
}

}  // namespace
}  // namespace nvp::petri
