// Tests of the robustness layer: the structured error taxonomy
// (fault::Error), the deterministic fault injector, the sparse stationary
// fallback chain, the thread pool's exception aggregation, and graceful
// degradation of the batch drivers (sweep / crossovers / optimizer /
// architecture space / Engine envelopes).

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/architecture_space.hpp"
#include "src/core/engine.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/params.hpp"
#include "src/core/sweep.hpp"
#include "src/fault/error.hpp"
#include "src/fault/injector.hpp"
#include "src/linalg/lu.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/fallback.hpp"
#include "src/obs/metrics.hpp"
#include "src/petri/net.hpp"
#include "src/petri/reachability.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace nvp;

// ---------------------------------------------------------------------------
// Error taxonomy.

TEST(FaultErrorTest, WhatRendersCategoryAndContext) {
  fault::Context context;
  context.site = "markov.gmres";
  context.backend = "sparse";
  context.states = 42;
  context.iteration = 7;
  context.residual = 0.5;
  context.causes = {"stage one stalled", "stage two stalled"};
  const fault::Error error(fault::Category::kNoConvergence, "solve failed",
                           context);
  const std::string what = error.what();
  EXPECT_NE(what.find("solve failed"), std::string::npos);
  EXPECT_NE(what.find("no-convergence"), std::string::npos);
  EXPECT_NE(what.find("markov.gmres"), std::string::npos);
  EXPECT_NE(what.find("backend=sparse"), std::string::npos);
  EXPECT_NE(what.find("states=42"), std::string::npos);
  EXPECT_NE(what.find("caused by: stage one stalled"), std::string::npos);
  EXPECT_EQ(error.category(), fault::Category::kNoConvergence);
  EXPECT_EQ(error.context().causes.size(), 2u);
}

TEST(FaultErrorTest, CategoryOfMapsLegacyExceptionTypes) {
  EXPECT_EQ(fault::category_of(std::bad_alloc()),
            fault::Category::kResource);
  EXPECT_EQ(fault::category_of(std::invalid_argument("x")),
            fault::Category::kInvalidModel);
  EXPECT_EQ(fault::category_of(std::runtime_error("x")),
            fault::Category::kInternal);
  const fault::Error error(fault::Category::kSingularMatrix, "x");
  EXPECT_EQ(fault::category_of(error), fault::Category::kSingularMatrix);
}

TEST(FaultErrorTest, SubsystemErrorsJoinTheTaxonomy) {
  const linalg::SingularMatrixError lu("pivot");
  EXPECT_EQ(lu.category(), fault::Category::kSingularMatrix);
  const markov::SolverError solver("bad model");
  EXPECT_EQ(solver.category(), fault::Category::kInvalidModel);
  // Both are catchable as the base fault::Error.
  const fault::Error* base = &lu;
  EXPECT_EQ(base->category(), fault::Category::kSingularMatrix);
}

TEST(FaultErrorTest, ErrorInfoSnapshotsAnErrorForEnvelopes) {
  fault::Context context;
  context.site = "runtime.pool";
  context.causes = {"a", "b"};
  const fault::Error error(fault::Category::kResource,
                           "dispatch failed\nsecond line", context);
  const fault::ErrorInfo info = fault::ErrorInfo::from(error);
  EXPECT_EQ(info.category, fault::Category::kResource);
  EXPECT_EQ(info.site, "runtime.pool");
  EXPECT_EQ(info.causes.size(), 2u);
  // summary() keeps the one-liner to the first line of what().
  EXPECT_EQ(info.summary().find("resource: dispatch failed"), 0u);
  EXPECT_EQ(info.summary().find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Injector: spec grammar, determinism, counters.

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::global().reset(); }
  void TearDown() override { fault::Injector::global().reset(); }
};

TEST_F(FaultInjectionTest, ConfigureParsesAndRejectsSpecs) {
  auto& injector = fault::Injector::global();
  std::string error;
  EXPECT_TRUE(injector.configure("gmres:0.25:7,cache:1.0", &error)) << error;
  EXPECT_DOUBLE_EQ(injector.rate(fault::Site::kGmres), 0.25);
  EXPECT_DOUBLE_EQ(injector.rate(fault::Site::kCache), 1.0);
  EXPECT_TRUE(injector.active());

  EXPECT_FALSE(injector.configure("bogus:0.5", &error));
  EXPECT_NE(error.find("unknown site"), std::string::npos);
  EXPECT_FALSE(injector.configure("gmres:2.0", &error));
  EXPECT_FALSE(injector.configure("gmres", &error));
  EXPECT_FALSE(injector.configure("gmres:0.5:notanumber", &error));
  // Failed configure leaves the previous arming untouched.
  EXPECT_DOUBLE_EQ(injector.rate(fault::Site::kGmres), 0.25);
}

TEST_F(FaultInjectionTest, DecisionsAreDeterministicPerSeed) {
  auto& injector = fault::Injector::global();
  const auto draw_pattern = [&] {
    injector.set(fault::Site::kLuPivot, 0.5, 42);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i)
      pattern.push_back(injector.fire(fault::Site::kLuPivot));
    return pattern;
  };
  const auto first = draw_pattern();
  const auto second = draw_pattern();
  EXPECT_EQ(first, second);
  // Rate 0.5 should fire a non-degenerate fraction of the time.
  int fired = 0;
  for (const bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
}

TEST_F(FaultInjectionTest, RateEndpointsAreScheduleIndependent) {
  auto& injector = fault::Injector::global();
  injector.set(fault::Site::kGmres, 1.0, 0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(injector.fire(fault::Site::kGmres));
  EXPECT_EQ(injector.decisions(fault::Site::kGmres), 10u);
  EXPECT_EQ(injector.fired(fault::Site::kGmres), 10u);
  injector.reset();
  EXPECT_FALSE(injector.active());
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(injector.fire(fault::Site::kGmres));
  EXPECT_EQ(injector.fired(fault::Site::kGmres), 0u);
}

TEST_F(FaultInjectionTest, LuPivotInjectionThrowsSingularMatrixError) {
  fault::Injector::global().set(fault::Site::kLuPivot, 1.0, 0);
  linalg::DenseMatrix identity(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) identity(i, i) = 1.0;
  try {
    linalg::LuDecomposition lu(std::move(identity));
    FAIL() << "expected injected singular pivot";
  } catch (const linalg::SingularMatrixError& e) {
    EXPECT_EQ(e.category(), fault::Category::kSingularMatrix);
    EXPECT_EQ(e.context().site, "linalg.lu");
  }
}

// ---------------------------------------------------------------------------
// Fallback chain: force each stage to fail; the final distribution must
// still match the dense oracle.

petri::PetriNet random_ring_net(std::uint64_t seed, bool with_deterministic) {
  util::RandomStream rng(seed);
  petri::PetriNet net("fault_fuzz" + std::to_string(seed));
  const int places = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<petri::PlaceId> ring;
  for (int p = 0; p < places; ++p)
    ring.push_back(net.add_place(
        "P" + std::to_string(p),
        p == 0 ? 1 + static_cast<int>(rng.uniform_index(3)) : 0));
  for (int p = 0; p < places; ++p) {
    const auto t = net.add_exponential("ring" + std::to_string(p),
                                       rng.uniform(0.05, 2.0));
    net.add_input_arc(t, ring[static_cast<std::size_t>(p)]);
    net.add_output_arc(t, ring[static_cast<std::size_t>((p + 1) % places)]);
  }
  if (with_deterministic) {
    const auto armed = net.add_place("armed", 1);
    const auto expired = net.add_place("expired", 0);
    const auto tick = net.add_deterministic("tick", rng.uniform(1.0, 20.0));
    net.add_input_arc(tick, armed);
    net.add_output_arc(tick, expired);
    const auto fix = net.add_immediate("fix");
    net.add_input_arc(fix, expired);
    net.add_output_arc(fix, armed);
  }
  return net;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST_F(FaultInjectionTest, ChainRecoversThroughPowerWhenGmresIsKilled) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const bool with_deterministic = seed % 2 == 0;
    const auto net = random_ring_net(seed, with_deterministic);
    const auto g = petri::TangibleReachabilityGraph::build(net);

    markov::DspnSteadyStateSolver::Options dense_options;
    dense_options.backend = markov::SolverBackend::kDense;
    const auto oracle =
        markov::DspnSteadyStateSolver(dense_options).solve(g);

    const std::uint64_t ilu0_before =
        counter_value("markov.fallback.attempts.gmres_ilu0");
    const std::uint64_t jacobi_before =
        counter_value("markov.fallback.attempts.gmres_jacobi");
    const std::uint64_t power_before =
        counter_value("markov.fallback.success.power");
    const std::uint64_t recovered_before =
        counter_value("markov.fallback.recovered");

    fault::Injector::global().set(fault::Site::kGmres, 1.0, 0);
    markov::DspnSteadyStateSolver::Options sparse_options;
    sparse_options.backend = markov::SolverBackend::kSparse;
    const auto degraded =
        markov::DspnSteadyStateSolver(sparse_options).solve(g);
    fault::Injector::global().reset();

    ASSERT_EQ(degraded.probabilities.size(), oracle.probabilities.size());
    for (std::size_t i = 0; i < oracle.probabilities.size(); ++i)
      EXPECT_NEAR(degraded.probabilities[i], oracle.probabilities[i], 1e-10)
          << "seed " << seed << " state " << i;
    // Every attempted stage is recorded, and the recovery is counted.
    EXPECT_GT(counter_value("markov.fallback.attempts.gmres_ilu0"),
              ilu0_before);
    EXPECT_GT(counter_value("markov.fallback.attempts.gmres_jacobi"),
              jacobi_before);
    EXPECT_GT(counter_value("markov.fallback.success.power"), power_before);
    EXPECT_GT(counter_value("markov.fallback.recovered"), recovered_before);
  }
}

TEST_F(FaultInjectionTest, ChainFallsBackToDenseLuWhenIterationIsKilled) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto net = random_ring_net(seed, seed % 2 == 0);
    const auto g = petri::TangibleReachabilityGraph::build(net);

    markov::DspnSteadyStateSolver::Options dense_options;
    dense_options.backend = markov::SolverBackend::kDense;
    const auto oracle =
        markov::DspnSteadyStateSolver(dense_options).solve(g);

    const std::uint64_t dense_before =
        counter_value("markov.fallback.success.dense");
    fault::Injector::global().set(fault::Site::kGmres, 1.0, 0);
    fault::Injector::global().set(fault::Site::kPowerIteration, 1.0, 0);
    markov::DspnSteadyStateSolver::Options sparse_options;
    sparse_options.backend = markov::SolverBackend::kSparse;
    const auto degraded =
        markov::DspnSteadyStateSolver(sparse_options).solve(g);
    fault::Injector::global().reset();

    ASSERT_EQ(degraded.probabilities.size(), oracle.probabilities.size());
    for (std::size_t i = 0; i < oracle.probabilities.size(); ++i)
      EXPECT_NEAR(degraded.probabilities[i], oracle.probabilities[i], 1e-10)
          << "seed " << seed << " state " << i;
    EXPECT_GT(counter_value("markov.fallback.success.dense"), dense_before);
  }
}

TEST_F(FaultInjectionTest, ExhaustedChainReportsEveryStageFailure) {
  const auto net = random_ring_net(3, false);
  const auto g = petri::TangibleReachabilityGraph::build(net);
  fault::Injector::global().set(fault::Site::kGmres, 1.0, 0);
  markov::DspnSteadyStateSolver::Options options;
  options.backend = markov::SolverBackend::kSparse;
  options.fallback.stages = {markov::FallbackStage::kGmresIlu0,
                             markov::FallbackStage::kGmresJacobi};
  try {
    markov::DspnSteadyStateSolver(options).solve(g);
    FAIL() << "expected chain exhaustion";
  } catch (const markov::SolverError& e) {
    EXPECT_EQ(e.category(), fault::Category::kNoConvergence);
    ASSERT_EQ(e.context().causes.size(), 2u);
    EXPECT_EQ(e.context().causes[0].find("gmres-ilu0:"), 0u);
    EXPECT_EQ(e.context().causes[1].find("gmres-jacobi:"), 0u);
  }
}

TEST_F(FaultInjectionTest, AttemptDeadlineYieldsDeadlineExceeded) {
  // A 3-state ring CTMC, solved through a power-only chain whose attempt
  // deadline has already passed when the iteration starts.
  std::vector<linalg::Triplet> triplets = {{0, 0, -1.0}, {0, 1, 1.0},
                                           {1, 1, -1.0}, {1, 2, 1.0},
                                           {2, 2, -1.0}, {2, 0, 1.0}};
  const linalg::SparseMatrixCsr q(3, 3, std::move(triplets));
  markov::FallbackOptions fallback;
  fallback.stages = {markov::FallbackStage::kPowerIteration};
  fallback.attempt_deadline_seconds = 1e-12;
  try {
    markov::ctmc_steady_state_sparse(q, fallback);
    FAIL() << "expected deadline exhaustion";
  } catch (const markov::SolverError& e) {
    EXPECT_EQ(e.category(), fault::Category::kDeadlineExceeded);
  }
}

TEST(FallbackParseTest, ParsesAndRendersChains) {
  const auto chain = markov::parse_fallback_stages("power,dense");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], markov::FallbackStage::kPowerIteration);
  EXPECT_EQ(chain[1], markov::FallbackStage::kDenseLu);
  EXPECT_EQ(markov::to_string(markov::FallbackOptions::default_stages()),
            "gmres-ilu0,gmres-jacobi,power,dense");
  EXPECT_THROW(markov::parse_fallback_stages("power,warp"),
               std::invalid_argument);
  EXPECT_THROW(markov::parse_fallback_stages(""), std::invalid_argument);
}

TEST_F(FaultInjectionTest, SparseBackendRetriesOnDenseWhenSparseSolveDies) {
  // Arm the uniformization site so decision 0 (the sparse attempt) fires
  // and decision 1 (the dense retry) passes: search a seed with that exact
  // pattern, which the injector's deterministic hash makes reproducible.
  const double rate = 0.5;
  const auto draw = [](std::uint64_t seed, std::uint64_t k) {
    util::SplitMix64 mix(util::substream_seed(seed, k));
    return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  };
  std::uint64_t seed = 1;
  while (!(draw(seed, 0) < rate && draw(seed, 1) >= rate)) ++seed;

  const auto net = random_ring_net(2, true);  // one deterministic group
  const auto g = petri::TangibleReachabilityGraph::build(net);
  markov::DspnSteadyStateSolver::Options dense_options;
  dense_options.backend = markov::SolverBackend::kDense;
  const auto oracle = markov::DspnSteadyStateSolver(dense_options).solve(g);

  const std::uint64_t retries_before =
      counter_value("markov.solver.backend_fallbacks");
  fault::Injector::global().set(fault::Site::kUniformization, rate, seed);
  markov::DspnSteadyStateSolver::Options sparse_options;
  sparse_options.backend = markov::SolverBackend::kSparse;
  const auto result = markov::DspnSteadyStateSolver(sparse_options).solve(g);
  fault::Injector::global().reset();

  EXPECT_EQ(result.backend_used, markov::SolverBackend::kDense);
  EXPECT_GT(counter_value("markov.solver.backend_fallbacks"), retries_before);
  ASSERT_EQ(result.probabilities.size(), oracle.probabilities.size());
  for (std::size_t i = 0; i < oracle.probabilities.size(); ++i)
    EXPECT_NEAR(result.probabilities[i], oracle.probabilities[i], 1e-12);
}

// ---------------------------------------------------------------------------
// Thread pool exception aggregation.

TEST(ThreadPoolAggregationTest, SingleFailureRethrowsOriginalType) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3)
                                     throw std::invalid_argument("just me");
                                 }),
               std::invalid_argument);
}

TEST(ThreadPoolAggregationTest, MultipleFailuresAggregateEveryMessage) {
  runtime::ThreadPool pool(4);
  const std::size_t n = pool.jobs();
  if (n < 2) GTEST_SKIP() << "needs at least two executors";
  // Spin-barrier bodies: every body is in flight before any of them throws,
  // so exactly n exceptions are captured regardless of the schedule.
  std::atomic<std::size_t> arrived{0};
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      arrived.fetch_add(1);
      while (arrived.load() < n) {
      }
      throw std::runtime_error("body " + std::to_string(i));
    });
    FAIL() << "expected aggregated failure";
  } catch (const fault::Error& e) {
    EXPECT_EQ(e.context().causes.size(), n);
    EXPECT_EQ(e.context().site, "runtime.pool");
    EXPECT_NE(std::string(e.what()).find("loop bodies failed"),
              std::string::npos);
  }
}

TEST_F(FaultInjectionTest, PoolDispatchInjectionThrowsResourceError) {
  fault::Injector::global().set(fault::Site::kPool, 1.0, 0);
  runtime::ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(4, [&](std::size_t) { ran.fetch_add(1); });
    FAIL() << "expected injected dispatch failure";
  } catch (const fault::Error& e) {
    EXPECT_EQ(e.category(), fault::Category::kResource);
  }
  EXPECT_EQ(ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Graceful degradation of the batch drivers.

core::ReliabilityAnalyzer cold_analyzer() {
  core::ReliabilityAnalyzer::Options options;
  options.use_cache = false;  // injected faults must reach the solver
  return core::ReliabilityAnalyzer(options);
}

TEST_F(FaultInjectionTest, SweepDegradesFailedPointsIntoEnvelopes) {
  fault::Injector::global().set(fault::Site::kUniformization, 1.0, 0);
  const auto analyzer = cold_analyzer();
  const auto params = core::SystemParameters::paper_six_version();
  const auto points = core::sweep_parameter(
      analyzer, params, core::set_rejuvenation_interval(),
      core::linspace(200.0, 3000.0, 4));
  ASSERT_EQ(points.size(), 4u);
  for (const auto& point : points) {
    EXPECT_FALSE(point.ok);
    EXPECT_EQ(point.error.category, fault::Category::kNoConvergence);
    EXPECT_FALSE(point.error.message.empty());
  }
}

TEST_F(FaultInjectionTest, StrictPolicyRestoresFailFast) {
  fault::Injector::global().set(fault::Site::kUniformization, 1.0, 0);
  const auto analyzer = cold_analyzer();
  const auto params = core::SystemParameters::paper_six_version();
  fault::Policy strict;
  strict.strict = true;
  EXPECT_THROW(core::sweep_parameter(analyzer, params,
                                     core::set_rejuvenation_interval(),
                                     core::linspace(200.0, 3000.0, 4), strict),
               fault::Error);
}

TEST_F(FaultInjectionTest, CrossoversUnderTotalFaultReturnEmpty) {
  fault::Injector::global().set(fault::Site::kAlloc, 1.0, 0);
  const auto analyzer = cold_analyzer();
  const auto a = core::SystemParameters::paper_six_version();
  const auto b = core::SystemParameters::paper_four_version();
  std::vector<core::Crossover> crossings;
  EXPECT_NO_THROW(crossings = core::find_crossovers(
                      analyzer, a, b, core::set_mean_time_to_compromise(),
                      core::linspace(500.0, 5000.0, 4)));
  EXPECT_TRUE(crossings.empty());
}

TEST_F(FaultInjectionTest, OptimizerThrowsWhenEveryGridPointFails) {
  fault::Injector::global().set(fault::Site::kAlloc, 1.0, 0);
  const auto analyzer = cold_analyzer();
  const auto params = core::SystemParameters::paper_six_version();
  try {
    core::optimize_rejuvenation_interval(analyzer, params, 100.0, 3000.0, 4,
                                         10.0);
    FAIL() << "expected all-points failure";
  } catch (const fault::Error& e) {
    EXPECT_EQ(e.category(), fault::Category::kNoConvergence);
  }
}

TEST_F(FaultInjectionTest, ArchitectureSpaceDegradesFailedCandidates) {
  fault::Injector::global().set(fault::Site::kAlloc, 1.0, 0);
  core::ArchitectureSpaceExplorer::Options options;
  options.max_versions = 4;
  options.max_faulty = 1;
  const auto results = core::ArchitectureSpaceExplorer(options).explore(
      core::SystemParameters::paper_four_version());
  ASSERT_FALSE(results.empty());
  for (const auto& result : results) {
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error.category, fault::Category::kResource);
  }
}

TEST_F(FaultInjectionTest, EngineReturnsErrorEnvelopeUnlessStrict) {
  fault::Injector::global().set(fault::Site::kAlloc, 1.0, 0);
  core::ReliabilityAnalyzer::Options analyzer_options;
  analyzer_options.use_cache = false;
  const core::Engine graceful(analyzer_options);
  const auto params = core::SystemParameters::paper_four_version();
  const auto result = graceful.analyze(params);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.analytic);
  EXPECT_EQ(result.error.category, fault::Category::kResource);
  EXPECT_EQ(result.provenance.entry, "analyze");

  core::Engine::Options strict;
  strict.strict = true;
  const core::Engine failfast(analyzer_options, strict);
  EXPECT_THROW(failfast.analyze(params), markov::SolverError);
}

TEST_F(FaultInjectionTest, CacheInjectionNeverChangesResults) {
  const auto params = core::SystemParameters::paper_four_version();
  const core::ReliabilityAnalyzer analyzer;  // caches enabled
  fault::Injector::global().set(fault::Site::kCache, 1.0, 0);
  const auto injected = analyzer.analyze(params);
  fault::Injector::global().reset();
  const auto clean = analyzer.analyze(params);
  // Forced misses change only costs, never values: the recomputed result is
  // bit-identical to the cached one.
  EXPECT_EQ(injected.expected_reliability, clean.expected_reliability);
  EXPECT_EQ(injected.tangible_states, clean.tangible_states);
}

}  // namespace
