// Tests for the src/runtime/ execution layer: thread-pool semantics
// (coverage, ordering of results, exception propagation), the sharded LRU
// solver cache (hit/miss/eviction accounting, LRU policy, memoization), the
// SplitMix64 substream API, and the determinism guarantee that parallel
// sweeps / replicated simulations produce results identical to serial runs
// for any job count.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/reliability.hpp"
#include "src/core/sweep.hpp"
#include "src/runtime/fnv.hpp"
#include "src/runtime/lru_cache.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/sim/dspn_simulator.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace nvp;

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  runtime::ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for(8, [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  runtime::ThreadPool pool(8);
  std::vector<int> input(500);
  std::iota(input.begin(), input.end(), 0);
  const auto squares =
      pool.parallel_map(input, [](const int& x) { return x * x; });
  ASSERT_EQ(squares.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_EQ(squares[i], input[i] * input[i]);
}

TEST(ThreadPool, PropagatesFirstExceptionToCaller) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed loop and stays usable.
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SerialPoolPropagatesExceptions) {
  runtime::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  runtime::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, DefaultJobsOverride) {
  runtime::set_default_jobs(3);
  EXPECT_EQ(runtime::default_jobs(), 3u);
  EXPECT_EQ(runtime::default_pool()->jobs(), 3u);
  runtime::set_default_jobs(0);  // back to auto
  EXPECT_GE(runtime::default_jobs(), 1u);
}

// ------------------------------------------------------------------ LRU cache

TEST(ShardedLruCache, CountsHitsAndMisses) {
  runtime::ShardedLruCache<int> cache(/*capacity=*/8, /*shards=*/1);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, 10);
  const auto hit = cache.get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 10);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  runtime::ShardedLruCache<int> cache(/*capacity=*/3, /*shards=*/1);
  cache.put(1, 1);
  cache.put(2, 2);
  cache.put(3, 3);
  // Touch 1 so that 2 becomes the LRU entry.
  EXPECT_TRUE(cache.get(1).has_value());
  cache.put(4, 4);  // over capacity: evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(ShardedLruCache, GetOrComputeMemoizes) {
  runtime::ShardedLruCache<int> cache(/*capacity=*/8, /*shards=*/2);
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return 42;
  };
  EXPECT_EQ(cache.get_or_compute(7, compute), 42);
  EXPECT_EQ(cache.get_or_compute(7, compute), 42);
  EXPECT_EQ(computed, 1);
}

TEST(ShardedLruCache, ClearResetsEntriesAndCounters) {
  runtime::ShardedLruCache<int> cache(/*capacity=*/4, /*shards=*/2);
  cache.put(1, 1);
  cache.get(1);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ShardedLruCache, ConcurrentMixedAccessIsConsistent) {
  runtime::ShardedLruCache<std::size_t> cache(/*capacity=*/64, /*shards=*/8);
  runtime::ThreadPool pool(8);
  pool.parallel_for(2000, [&](std::size_t i) {
    const std::uint64_t key = i % 100;
    const std::size_t value =
        cache.get_or_compute(key, [&] { return static_cast<std::size_t>(key * 3); });
    EXPECT_EQ(value, key * 3);
  });
  // get_or_compute performs exactly one counted lookup per call.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 2000u);
  EXPECT_GE(stats.misses, 100u);  // every distinct key misses at least once
}

// ----------------------------------------------------------------- fnv + seeds

TEST(Fnv1a, DistinguishesFieldBoundaries) {
  runtime::Fnv1a a, b;
  a.str("ab").str("c");
  b.str("a").str("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Fnv1a, CollapsesSignedZero) {
  runtime::Fnv1a a, b;
  a.f64(0.0);
  b.f64(-0.0);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(SubstreamSeed, MatchesSerialSplitMix64Seeder) {
  // The documented compatibility guarantee: substream_seed(m, k) is the
  // (k+1)-th output of SplitMix64(m), so parallel tasks seeding themselves
  // by index reproduce the historical serial seeder exactly.
  const std::uint64_t master = 0xDEADBEEFCAFEULL;
  util::SplitMix64 seeder(master);
  for (std::uint64_t k = 0; k < 64; ++k)
    EXPECT_EQ(util::substream_seed(master, k), seeder.next());
}

TEST(SeedSequence, NextAndAtAgree) {
  util::SeedSequence seq(123);
  const std::uint64_t s0 = seq.next();
  const std::uint64_t s1 = seq.next();
  EXPECT_EQ(s0, seq.at(0));
  EXPECT_EQ(s1, seq.at(1));
  EXPECT_NE(s0, s1);
}

// -------------------------------------------------------- analyzer memoization

TEST(AnalysisCache, KeyIsSensitiveToParamsAndOptions) {
  const auto params = core::SystemParameters::paper_six_version();
  core::ReliabilityAnalyzer::Options options;
  const std::uint64_t base_key = core::analysis_cache_key(params, options);

  auto perturbed = params;
  perturbed.rejuvenation_interval += 1.0;
  EXPECT_NE(core::analysis_cache_key(perturbed, options), base_key);

  auto other_options = options;
  other_options.convention = core::RewardConvention::kGeneralized;
  EXPECT_NE(core::analysis_cache_key(params, other_options), base_key);
  EXPECT_EQ(core::analysis_cache_key(params, options), base_key);
}

TEST(AnalysisCache, RepeatAnalysisHitsTheCache) {
  core::ReliabilityAnalyzer::cache().clear();
  const core::ReliabilityAnalyzer analyzer;
  const auto params = core::SystemParameters::paper_four_version();
  const auto first = analyzer.analyze(params);
  const auto before = core::ReliabilityAnalyzer::cache().stats();
  const auto second = analyzer.analyze(params);
  const auto after = core::ReliabilityAnalyzer::cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_DOUBLE_EQ(first.expected_reliability, second.expected_reliability);
  EXPECT_EQ(first.tangible_states, second.tangible_states);
}

// ---------------------------------------------------------------- determinism

std::vector<core::SweepPoint> run_sweep_with_jobs(std::size_t jobs,
                                                  bool use_cache) {
  runtime::set_default_jobs(jobs);
  core::ReliabilityAnalyzer::Options options;
  options.use_cache = use_cache;
  core::ReliabilityAnalyzer::cache().clear();
  const core::ReliabilityAnalyzer analyzer(options);
  const auto base = core::SystemParameters::paper_six_version();
  return core::sweep_parameter(analyzer, base,
                               core::set_rejuvenation_interval(),
                               core::linspace(300.0, 1200.0, 6));
}

TEST(Determinism, SweepIsIdenticalForAnyJobCount) {
  const auto serial = run_sweep_with_jobs(1, /*use_cache=*/false);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = run_sweep_with_jobs(jobs, /*use_cache=*/false);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].x, serial[i].x) << "jobs=" << jobs;
      // Bitwise equality: the same solves run in both cases.
      EXPECT_EQ(parallel[i].expected_reliability,
                serial[i].expected_reliability)
          << "jobs=" << jobs << " point " << i;
    }
  }
  runtime::set_default_jobs(0);
}

TEST(Determinism, CachedSweepMatchesUncached) {
  const auto uncached = run_sweep_with_jobs(1, /*use_cache=*/false);
  const auto cached = run_sweep_with_jobs(1, /*use_cache=*/true);
  ASSERT_EQ(cached.size(), uncached.size());
  for (std::size_t i = 0; i < uncached.size(); ++i)
    EXPECT_EQ(cached[i].expected_reliability,
              uncached[i].expected_reliability);
  runtime::set_default_jobs(0);
}

sim::ReplicationEstimate run_estimate_with_jobs(std::size_t jobs) {
  runtime::set_default_jobs(jobs);
  const auto params = core::SystemParameters::paper_four_version();
  const auto model = core::PerceptionModelFactory::build(params);
  const auto rewards = core::make_reliability_model(params);
  const sim::DspnSimulator simulator(model.net);
  sim::SimulationOptions options;
  options.horizon = 2.0e4;
  options.warmup_time = 1.0e3;
  options.seed = 2024;
  return simulator.estimate(
      [&](const petri::Marking& m) {
        return rewards->state_reliability(model.healthy(m),
                                          model.compromised(m),
                                          model.down(m));
      },
      options, /*replications=*/8);
}

TEST(Determinism, ReplicatedEstimateIsIdenticalForAnyJobCount) {
  const auto serial = run_estimate_with_jobs(1);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = run_estimate_with_jobs(jobs);
    // Bit-identical at the estimate level: same substream per replication,
    // accumulated in replication order.
    EXPECT_EQ(parallel.mean, serial.mean) << "jobs=" << jobs;
    EXPECT_EQ(parallel.std_error, serial.std_error) << "jobs=" << jobs;
    EXPECT_EQ(parallel.ci.lo, serial.ci.lo) << "jobs=" << jobs;
    EXPECT_EQ(parallel.ci.hi, serial.ci.hi) << "jobs=" << jobs;
  }
  runtime::set_default_jobs(0);
}

TEST(Determinism, OptimizerIsIdenticalForAnyJobCount) {
  auto optimize_with = [](std::size_t jobs) {
    runtime::set_default_jobs(jobs);
    core::ReliabilityAnalyzer::cache().clear();
    const core::ReliabilityAnalyzer analyzer;
    return core::optimize_rejuvenation_interval(
        analyzer, core::SystemParameters::paper_six_version(), 200.0, 1500.0,
        /*grid_points=*/6, /*tolerance=*/50.0);
  };
  const auto serial = optimize_with(1);
  const auto parallel = optimize_with(8);
  EXPECT_EQ(parallel.x, serial.x);
  EXPECT_EQ(parallel.expected_reliability, serial.expected_reliability);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
  runtime::set_default_jobs(0);
}

}  // namespace
