// Tests for the third extension wave: T-semiflows, dead-marking detection,
// and the error-burst safety metrics.

#include <gtest/gtest.h>

#include "src/core/model_factory.hpp"
#include "src/perception/system.hpp"
#include "src/petri/structural.hpp"

namespace nvp {
namespace {

// ---- T-semiflows ----------------------------------------------------------

TEST(TSemiflows, SimpleCycleIsCovered) {
  petri::PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto t1 = net.add_exponential("t1", 1.0);
  net.add_input_arc(t1, a);
  net.add_output_arc(t1, b);
  const auto t2 = net.add_exponential("t2", 1.0);
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, a);
  const auto flows = petri::t_semiflows(net);
  ASSERT_EQ(flows.size(), 1u);
  // Firing t1 once and t2 once reproduces the marking.
  EXPECT_DOUBLE_EQ(flows[0][t1.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][t2.index], 1.0);
}

TEST(TSemiflows, WeightedCycleNeedsProportionalFirings) {
  // t1 moves 2 tokens A -> B per firing; t2 moves 1 back. Reproduction
  // needs t2 fired twice per t1.
  petri::PetriNet net;
  const auto a = net.add_place("A", 2);
  const auto b = net.add_place("B", 0);
  const auto t1 = net.add_exponential("t1", 1.0);
  net.add_input_arc(t1, a, 2);
  net.add_output_arc(t1, b, 2);
  const auto t2 = net.add_exponential("t2", 1.0);
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, a);
  const auto flows = petri::t_semiflows(net);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0][t1.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][t2.index], 2.0);
}

TEST(TSemiflows, FourVersionLifecycleIsReproducible) {
  const auto model = core::PerceptionModelFactory::build(
      core::SystemParameters::paper_four_version());
  const auto flows = petri::t_semiflows(model.net);
  // The H -> C -> N -> H cycle: one firing of each transition.
  ASSERT_EQ(flows.size(), 1u);
  for (double x : flows[0]) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(TSemiflows, SourceTransitionHasNone) {
  petri::PetriNet net;
  const auto p = net.add_place("P", 0);
  const auto t = net.add_exponential("t", 1.0);
  net.add_output_arc(t, p);  // strictly produces: no reproduction possible
  EXPECT_TRUE(petri::t_semiflows(net).empty());
}

// ---- dead markings -----------------------------------------------------------

TEST(DeadMarkings, DetectedAndLocated) {
  petri::PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("t", 1.0);
  net.add_input_arc(t, a);
  net.add_output_arc(t, b);
  const auto g = petri::TangibleReachabilityGraph::build(net);
  const auto dead = petri::dead_markings(g);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(g.marking(dead[0])[b.index], 1);
}

TEST(DeadMarkings, LiveModelsHaveNone) {
  for (const auto& params :
       {core::SystemParameters::paper_four_version(),
        core::SystemParameters::paper_six_version()}) {
    const auto model = core::PerceptionModelFactory::build(params);
    const auto g = petri::TangibleReachabilityGraph::build(model.net);
    EXPECT_TRUE(petri::dead_markings(g).empty());
  }
}

// ---- error bursts ---------------------------------------------------------------

TEST(ErrorBursts, TrackedDuringCampaign) {
  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = core::SystemParameters::paper_four_version();
  // Make errors frequent: high p', fast compromise, slow failure.
  cfg.params.p_prime = 0.9;
  cfg.params.mean_time_to_compromise = 50.0;
  cfg.params.mean_time_to_failure = 1.0e7;
  cfg.seed = 3;
  cfg.frame_interval = 1.0;
  perception::NVersionPerceptionSystem system(cfg);
  const auto result = system.run(2.0e5);
  EXPECT_GT(result.errors, 1000u);
  EXPECT_GE(result.longest_error_burst, 3u);
  EXPECT_GT(result.error_bursts_at_least_3, 0u);
  // The longest burst is at least as long as any counted >= 3 burst.
  EXPECT_GE(result.longest_error_burst, 3u);
}

TEST(ErrorBursts, RareWhenSystemHealthy) {
  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = core::SystemParameters::paper_six_version();
  cfg.params.p = 0.01;  // very accurate modules
  cfg.seed = 4;
  cfg.frame_interval = 1.0;
  perception::NVersionPerceptionSystem system(cfg);
  const auto result = system.run(1.0e5);
  EXPECT_LT(result.longest_error_burst, 50u);
  // Ratio sanity: bursts cannot exceed total errors.
  EXPECT_LE(result.error_bursts_at_least_3 * 3, result.errors + 3);
}

TEST(ErrorBursts, RejuvenationShortensBursts) {
  auto run_with = [](const core::SystemParameters& params) {
    perception::NVersionPerceptionSystem::Config cfg;
    cfg.params = params;
    cfg.params.p_prime = 0.8;
    cfg.seed = 11;
    cfg.frame_interval = 1.0;
    perception::NVersionPerceptionSystem system(cfg);
    return system.run(1.0e6);
  };
  const auto four =
      run_with(core::SystemParameters::paper_four_version());
  const auto six = run_with(core::SystemParameters::paper_six_version());
  EXPECT_LT(six.error_bursts_at_least_3, four.error_bursts_at_least_3);
}

}  // namespace
}  // namespace nvp
