#include <gtest/gtest.h>

#include <cmath>

#include "src/core/reliability.hpp"
#include "src/core/voting.hpp"
#include "src/util/contracts.hpp"

namespace nvp::core {
namespace {

constexpr double kP = 0.08;
constexpr double kPPrime = 0.5;
constexpr double kAlpha = 0.5;

// ---- voting -------------------------------------------------------------------

TEST(Voting, BftThresholds) {
  EXPECT_EQ(VotingScheme::bft(4, 1).threshold(), 3);
  EXPECT_EQ(VotingScheme::bft_rejuvenating(6, 1, 1).threshold(), 4);
  EXPECT_EQ(VotingScheme::majority(5).threshold(), 3);
  EXPECT_EQ(VotingScheme::majority(6).threshold(), 4);
  EXPECT_EQ(VotingScheme::unanimous(5).threshold(), 5);
}

TEST(Voting, ReplicaRequirementsEnforced) {
  EXPECT_THROW(VotingScheme::bft(3, 1), util::ContractViolation);
  EXPECT_NO_THROW(VotingScheme::bft(4, 1));
  EXPECT_THROW(VotingScheme::bft_rejuvenating(5, 1, 1),
               util::ContractViolation);
  EXPECT_NO_THROW(VotingScheme::bft_rejuvenating(6, 1, 1));
}

TEST(Voting, DecideCoversAllVerdicts) {
  const auto scheme = VotingScheme::bft(4, 1);  // threshold 3
  EXPECT_EQ(scheme.decide(3, 1, 0), Verdict::kCorrect);
  EXPECT_EQ(scheme.decide(4, 0, 0), Verdict::kCorrect);
  EXPECT_EQ(scheme.decide(1, 3, 0), Verdict::kError);
  EXPECT_EQ(scheme.decide(2, 2, 0), Verdict::kInconclusive);
  EXPECT_EQ(scheme.decide(2, 1, 1), Verdict::kInconclusive);
  EXPECT_EQ(scheme.decide(1, 1, 2), Verdict::kUnavailable);
}

TEST(Voting, DecideValidatesCounts) {
  const auto scheme = VotingScheme::bft(4, 1);
  EXPECT_THROW(scheme.decide(2, 1, 0), util::ContractViolation);
  EXPECT_THROW(scheme.decide(-1, 4, 1), util::ContractViolation);
}

TEST(Voting, MaxSilent) {
  EXPECT_EQ(VotingScheme::bft(4, 1).max_silent(), 1);
  EXPECT_EQ(VotingScheme::bft_rejuvenating(6, 1, 1).max_silent(), 2);
}

TEST(Voting, DescribeAndToString) {
  EXPECT_EQ(VotingScheme::bft(4, 1).describe(), "3-out-of-4");
  EXPECT_STREQ(to_string(Verdict::kCorrect), "correct");
  EXPECT_STREQ(to_string(Verdict::kUnavailable), "unavailable");
}

// ---- binomial helper -------------------------------------------------------------

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 3), 20.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(6, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(3, -1), 0.0);
}

// ---- paper four-version functions -------------------------------------------------

TEST(PaperFourVersion, MatchesHandComputedDefaults) {
  const PaperFourVersionReliability r(kP, kPPrime, kAlpha);
  EXPECT_NEAR(r.state_reliability(4, 0, 0), 0.95, 1e-12);
  EXPECT_NEAR(r.state_reliability(3, 1, 0), 0.95, 1e-12);
  EXPECT_NEAR(r.state_reliability(3, 0, 1), 0.98, 1e-12);
  EXPECT_NEAR(r.state_reliability(2, 2, 0), 0.96, 1e-12);
  EXPECT_NEAR(r.state_reliability(2, 1, 1), 0.98, 1e-12);
  EXPECT_NEAR(r.state_reliability(1, 3, 0), 0.845, 1e-12);
  EXPECT_NEAR(r.state_reliability(1, 2, 1), 0.98, 1e-12);
  EXPECT_NEAR(r.state_reliability(0, 4, 0), 0.75, 1e-12);
  EXPECT_NEAR(r.state_reliability(0, 3, 1), 0.875, 1e-12);
}

TEST(PaperFourVersion, ZeroWhenVoterCannotDecide) {
  const PaperFourVersionReliability r(kP, kPPrime, kAlpha);
  EXPECT_DOUBLE_EQ(r.state_reliability(2, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(r.state_reliability(1, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(r.state_reliability(0, 0, 4), 0.0);
}

TEST(PaperFourVersion, PerfectModulesGivePerfectReliability) {
  const PaperFourVersionReliability r(0.0, 0.0, kAlpha);
  EXPECT_DOUBLE_EQ(r.state_reliability(4, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.state_reliability(0, 4, 0), 1.0);
}

TEST(PaperFourVersion, RejectsInvalidStatesAndParams) {
  const PaperFourVersionReliability r(kP, kPPrime, kAlpha);
  EXPECT_THROW(r.state_reliability(3, 2, 0), util::ContractViolation);
  EXPECT_THROW(r.state_reliability(-1, 4, 1), util::ContractViolation);
  EXPECT_THROW(PaperFourVersionReliability(1.5, 0.5, 0.5),
               util::ContractViolation);
}

// ---- paper six-version functions ---------------------------------------------------

TEST(PaperSixVersion, MatchesHandComputedDefaults) {
  const PaperSixVersionReliability r(kP, kPPrime, kAlpha);
  // R_{6,0,0} = 1 - [p a^5 + 6 p a^4 (1-a) + 15 p a^3 (1-a)^2]
  EXPECT_NEAR(r.state_reliability(6, 0, 0),
              1.0 - (0.08 * 0.03125 + 6 * 0.08 * 0.0625 * 0.5 +
                     15 * 0.08 * 0.125 * 0.25),
              1e-12);
  // R_{4,0,2} = 1 - p a^3
  EXPECT_NEAR(r.state_reliability(4, 0, 2), 1.0 - 0.08 * 0.125, 1e-12);
  // R_{0,4,2} = 1 - p'^4
  EXPECT_NEAR(r.state_reliability(0, 4, 2), 1.0 - 0.0625, 1e-12);
  // R_{0,6,0} = 1 - [p'^6 + 6 p'^5 (1-p') + 15 p'^4 (1-p')^2]
  EXPECT_NEAR(r.state_reliability(0, 6, 0),
              1.0 - (std::pow(0.5, 6) + 6 * std::pow(0.5, 5) * 0.5 +
                     15 * std::pow(0.5, 4) * 0.25),
              1e-12);
}

TEST(PaperSixVersion, ZeroWhenVoterCannotDecide) {
  const PaperSixVersionReliability r(kP, kPPrime, kAlpha);
  EXPECT_DOUBLE_EQ(r.state_reliability(3, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(r.state_reliability(0, 0, 6), 0.0);
  EXPECT_GT(r.state_reliability(4, 0, 2), 0.0);
}

TEST(PaperSixVersion, AllDefinedStatesAreProbabilities) {
  const PaperSixVersionReliability r(kP, kPPrime, kAlpha);
  for (int i = 0; i <= 6; ++i)
    for (int j = 0; i + j <= 6; ++j) {
      const int k = 6 - i - j;
      const double value = r.state_reliability(i, j, k);
      EXPECT_GE(value, 0.0) << "state " << i << "," << j << "," << k;
      EXPECT_LE(value, 1.0) << "state " << i << "," << j << "," << k;
    }
}

// ---- generalized model --------------------------------------------------------------

GeneralizedReliability make_gen4(double p = kP, double pp = kPPrime,
                                 double a = kAlpha, bool strict = false) {
  return GeneralizedReliability(4, VotingScheme::bft(4, 1), p, pp, a,
                                strict);
}

GeneralizedReliability make_gen6(double p = kP, double pp = kPPrime,
                                 double a = kAlpha, bool strict = false) {
  return GeneralizedReliability(6, VotingScheme::bft_rejuvenating(6, 1, 1),
                                p, pp, a, strict);
}

TEST(Generalized, HealthyErrorPmfIsDistribution) {
  const auto gen = make_gen6();
  for (int i = 0; i <= 6; ++i) {
    double total = 0.0;
    for (int h = 0; h <= i; ++h) {
      const double mass = gen.healthy_error_pmf(i, h);
      EXPECT_GE(mass, 0.0);
      total += mass;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "i = " << i;
  }
}

TEST(Generalized, HealthyErrorPmfMatchesEgeModel) {
  const auto gen = make_gen6();
  // P(specific subset of h errs) * C(i, h) = C(i,h) p a^(h-1) (1-a)^(i-h).
  EXPECT_NEAR(gen.healthy_error_pmf(4, 3),
              4 * kP * kAlpha * kAlpha * (1 - kAlpha), 1e-14);
  EXPECT_NEAR(gen.healthy_error_pmf(4, 4), kP * std::pow(kAlpha, 3), 1e-14);
  EXPECT_NEAR(gen.healthy_error_pmf(1, 1), kP, 1e-14);
}

TEST(Generalized, CompromisedPmfIsBinomial) {
  const auto gen = make_gen6();
  EXPECT_NEAR(gen.compromised_error_pmf(3, 2),
              3 * 0.25 * 0.5, 1e-14);
  double total = 0.0;
  for (int c = 0; c <= 5; ++c) total += gen.compromised_error_pmf(5, c);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Generalized, AgreesWithPaperFourVersionWhereExact) {
  const PaperFourVersionReliability paper(kP, kPPrime, kAlpha);
  const auto gen = make_gen4();
  // States where Appendix A is the rigorous count (DESIGN.md §5).
  const int exact_states[][3] = {{4, 0, 0}, {3, 1, 0}, {3, 0, 1},
                                 {2, 1, 1}, {1, 3, 0}, {1, 2, 1},
                                 {0, 3, 1}};
  for (const auto& s : exact_states)
    EXPECT_NEAR(paper.state_reliability(s[0], s[1], s[2]),
                gen.state_reliability(s[0], s[1], s[2]), 1e-12)
        << "state " << s[0] << "," << s[1] << "," << s[2];
}

TEST(Generalized, DocumentsPaperFourVersionDeviations) {
  const PaperFourVersionReliability paper(kP, kPPrime, kAlpha);
  const auto gen = make_gen4();
  // R_{0,4,0}: the paper's 3 p'^3 (1-p') coefficient (C(4,3) = 4 in the
  // rigorous count) makes the paper's value higher.
  EXPECT_GT(paper.state_reliability(0, 4, 0),
            gen.state_reliability(0, 4, 0));
  EXPECT_NEAR(gen.state_reliability(0, 4, 0),
              1.0 - (std::pow(kPPrime, 4) +
                     4 * std::pow(kPPrime, 3) * (1 - kPPrime)),
              1e-12);
}

TEST(Generalized, AgreesWithPaperSixVersionWhereExact) {
  const PaperSixVersionReliability paper(kP, kPPrime, kAlpha);
  const auto gen = make_gen6();
  const int exact_states[][3] = {
      {6, 0, 0}, {5, 1, 0}, {5, 0, 1}, {4, 1, 1}, {4, 0, 2}, {3, 3, 0},
      {3, 2, 1}, {3, 1, 2}, {2, 2, 2}, {1, 5, 0}, {1, 4, 1}, {1, 3, 2},
      {0, 6, 0}, {0, 5, 1}, {0, 4, 2}};
  for (const auto& s : exact_states)
    EXPECT_NEAR(paper.state_reliability(s[0], s[1], s[2]),
                gen.state_reliability(s[0], s[1], s[2]), 1e-12)
        << "state " << s[0] << "," << s[1] << "," << s[2];
}

TEST(Generalized, DocumentsPaperSixVersionDeviations) {
  const PaperSixVersionReliability paper(kP, kPPrime, kAlpha);
  const auto gen = make_gen6();
  // The three states the Appendix simplifies or typos (DESIGN.md §5).
  for (const auto& s : {std::array{4, 2, 0}, {2, 4, 0}, {2, 3, 1}})
    EXPECT_GT(std::fabs(paper.state_reliability(s[0], s[1], s[2]) -
                        gen.state_reliability(s[0], s[1], s[2])),
              1e-6)
        << "state " << s[0] << "," << s[1] << "," << s[2];
}

TEST(Generalized, MonotonicInP) {
  double prev = 1.1;
  for (double p : {0.01, 0.05, 0.1, 0.2, 0.4}) {
    const auto gen = make_gen6(p, kPPrime, kAlpha);
    const double r = gen.state_reliability(5, 1, 0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Generalized, MonotonicInPPrime) {
  double prev = 1.1;
  for (double pp : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto gen = make_gen6(kP, pp, kAlpha);
    const double r = gen.state_reliability(2, 4, 0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Generalized, AlphaOneMeansPerfectCorrelation) {
  // With alpha = 1 all healthy modules err together with probability p;
  // in an all-healthy state the error probability is exactly p.
  const auto gen = make_gen6(kP, kPPrime, 1.0);
  EXPECT_NEAR(gen.state_reliability(6, 0, 0), 1.0 - kP, 1e-12);
}

TEST(Generalized, StrictNeverExceedsPaperConvention) {
  const auto lax = make_gen6(kP, kPPrime, kAlpha, false);
  const auto strict = make_gen6(kP, kPPrime, kAlpha, true);
  for (int i = 0; i <= 6; ++i)
    for (int j = 0; i + j <= 6; ++j) {
      const int k = 6 - i - j;
      EXPECT_LE(strict.state_reliability(i, j, k),
                lax.state_reliability(i, j, k) + 1e-12);
    }
}

TEST(Generalized, StrictAllHealthyClosedForm) {
  // Strict reward in (6,0,0): P(at least 4 of 6 correct)
  // = P(at most 2 healthy err).
  const auto strict = make_gen6(kP, kPPrime, kAlpha, true);
  const auto gen = make_gen6();
  double expected = 0.0;
  for (int h = 0; h <= 2; ++h) expected += gen.healthy_error_pmf(6, h);
  EXPECT_NEAR(strict.state_reliability(6, 0, 0), expected, 1e-12);
}

TEST(Generalized, RejectsInconsistentParameters) {
  // p > alpha makes the common-cause pmf exceed 1 for large i.
  EXPECT_THROW(make_gen6(0.5, 0.5, 0.1), util::ContractViolation);
  EXPECT_THROW(GeneralizedReliability(4, VotingScheme::bft(6, 1), kP,
                                      kPPrime, kAlpha),
               util::ContractViolation);
}

TEST(Generalized, ScalesToLargerSystems) {
  // A 10-version f=2 r=1 system: thresholds and zero-states follow the
  // formulas; all values are probabilities.
  const GeneralizedReliability gen(
      10, VotingScheme::bft_rejuvenating(10, 2, 1), kP, kPPrime, kAlpha);
  for (int i = 0; i <= 10; ++i)
    for (int j = 0; i + j <= 10; ++j) {
      const int k = 10 - i - j;
      const double r = gen.state_reliability(i, j, k);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
      if (k > 10 - 6) {
        EXPECT_DOUBLE_EQ(r, 0.0);  // threshold 2f+r+1 = 6
      }
    }
}

// ---- factory ---------------------------------------------------------------------

TEST(RewardFactory, SelectsPaperModelsForPaperConfigs) {
  const auto four = SystemParameters::paper_four_version();
  const auto model4 = make_reliability_model(four);
  EXPECT_NE(dynamic_cast<PaperFourVersionReliability*>(model4.get()),
            nullptr);
  const auto six = SystemParameters::paper_six_version();
  const auto model6 = make_reliability_model(six);
  EXPECT_NE(dynamic_cast<PaperSixVersionReliability*>(model6.get()),
            nullptr);
}

TEST(RewardFactory, FallsBackToGeneralized) {
  SystemParameters params = SystemParameters::paper_six_version();
  params.n_versions = 7;  // no verbatim functions published
  const auto model = make_reliability_model(params);
  EXPECT_NE(dynamic_cast<GeneralizedReliability*>(model.get()), nullptr);
  EXPECT_EQ(model->versions(), 7);

  const auto strict = make_reliability_model(
      SystemParameters::paper_six_version(), RewardConvention::kStrict);
  EXPECT_NE(dynamic_cast<GeneralizedReliability*>(strict.get()), nullptr);
}

// ---- parameters -------------------------------------------------------------------

TEST(Parameters, PaperPresets) {
  const auto four = SystemParameters::paper_four_version();
  EXPECT_EQ(four.n_versions, 4);
  EXPECT_FALSE(four.rejuvenation);
  EXPECT_EQ(four.voting_threshold(), 3);
  EXPECT_EQ(four.max_tolerable_down(), 1);
  const auto six = SystemParameters::paper_six_version();
  EXPECT_EQ(six.n_versions, 6);
  EXPECT_TRUE(six.rejuvenation);
  EXPECT_EQ(six.voting_threshold(), 4);
  EXPECT_EQ(six.max_tolerable_down(), 2);
  EXPECT_NO_THROW(four.validate());
  EXPECT_NO_THROW(six.validate());
  EXPECT_FALSE(six.describe().empty());
}

TEST(Parameters, ValidationCatchesBadValues) {
  auto params = SystemParameters::paper_six_version();
  params.n_versions = 5;  // < 3f + 2r + 1
  EXPECT_THROW(params.validate(), util::ContractViolation);
  params = SystemParameters::paper_four_version();
  params.p = 1.5;
  EXPECT_THROW(params.validate(), util::ContractViolation);
  params = SystemParameters::paper_four_version();
  params.mean_time_to_compromise = 0.0;
  EXPECT_THROW(params.validate(), util::ContractViolation);
  params = SystemParameters::paper_six_version();
  params.rejuvenation_interval = -1.0;
  EXPECT_THROW(params.validate(), util::ContractViolation);
}

}  // namespace
}  // namespace nvp::core
