#include <gtest/gtest.h>

#include <cmath>

#include "src/perception/environment.hpp"
#include "src/perception/fault_injector.hpp"
#include "src/perception/module_sim.hpp"
#include "src/perception/rejuvenator.hpp"
#include "src/perception/sensor.hpp"
#include "src/perception/system.hpp"
#include "src/perception/voter.hpp"
#include "src/core/analyzer.hpp"
#include "src/util/contracts.hpp"
#include "src/util/stats.hpp"

namespace nvp::perception {
namespace {

// ---- environment -------------------------------------------------------------

TEST(Environment, FramesAdvanceTimeAndStayInRange) {
  Environment env(Environment::Config{10, 0.5, 1.0, 0.2, 1});
  double last_time = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const Frame f = env.next();
    EXPECT_GT(f.time, last_time);
    last_time = f.time;
    EXPECT_GE(f.label, 0);
    EXPECT_LT(f.label, 10);
    EXPECT_GE(f.difficulty, 0.0);
    EXPECT_LE(f.difficulty, 1.0);
  }
  EXPECT_EQ(env.frames_generated(), 1000u);
}

TEST(Environment, PopularitySkewBiasesLabels) {
  Environment env(Environment::Config{10, 1.0, 2.0, 0.0, 2});
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[env.next().label];
  EXPECT_GT(counts[0], counts[9] * 5);
}

// ---- sensors -------------------------------------------------------------------

TEST(Sensor, KindsTransferDifficultyDifferently) {
  Frame hard;
  hard.label = 3;
  hard.difficulty = 1.0;
  SensorModel camera(SensorKind::kCamera, 1);
  SensorModel lidar(SensorKind::kLidar, 2);
  SensorModel radar(SensorKind::kRadar, 3);
  const auto oc = camera.observe(hard);
  const auto ol = lidar.observe(hard);
  const auto orr = radar.observe(hard);
  EXPECT_GT(oc.effective_difficulty, ol.effective_difficulty);
  EXPECT_GT(ol.effective_difficulty, orr.effective_difficulty);
  EXPECT_EQ(oc.true_label, 3);
  EXPECT_STREQ(to_string(SensorKind::kLidar), "lidar");
}

// ---- module simulator ------------------------------------------------------------

TEST(ModuleSim, SilentWhenNotOperational) {
  MlModuleSim module(0, "m", 1);
  module.set_state(ModuleState::kFailed);
  const auto a = module.classify(5, false, 0, 0.5, 0.5, 10);
  EXPECT_FALSE(a.responded);
  module.set_state(ModuleState::kRejuvenating);
  EXPECT_FALSE(module.classify(5, false, 0, 0.5, 0.5, 10).responded);
  EXPECT_FALSE(module.operational());
}

TEST(ModuleSim, HealthyErrsOnlyOnAdverseInput) {
  MlModuleSim module(0, "m", 2);
  for (int i = 0; i < 1000; ++i) {
    const auto a = module.classify(7, false, 3, 0.5, 0.5, 10);
    ASSERT_TRUE(a.responded);
    ASSERT_EQ(a.label, 7);
  }
  EXPECT_EQ(module.frames_wrong(), 0u);
}

TEST(ModuleSim, HealthySuccumbsWithProbabilityAlpha) {
  MlModuleSim module(0, "m", 3);
  const int trials = 50000;
  int wrong = 0;
  for (int i = 0; i < trials; ++i)
    if (module.classify(7, true, 3, 0.4, 0.5, 10).label != 7) ++wrong;
  EXPECT_NEAR(wrong / static_cast<double>(trials), 0.4, 0.01);
}

TEST(ModuleSim, CommonCauseVictimsShareTheAdverseLabel) {
  MlModuleSim module(0, "m", 4);
  for (int i = 0; i < 1000; ++i) {
    const auto a = module.classify(7, true, 3, 1.0, 0.5, 10);
    ASSERT_EQ(a.label, 3);  // alpha = 1: always errs, onto the shared label
  }
}

TEST(ModuleSim, CompromisedErrsWithPPrime) {
  MlModuleSim module(0, "m", 5);
  module.set_state(ModuleState::kCompromised);
  const int trials = 50000;
  int wrong = 0;
  for (int i = 0; i < trials; ++i)
    if (module.classify(7, false, 0, 0.5, 0.3, 10).label != 7) ++wrong;
  EXPECT_NEAR(wrong / static_cast<double>(trials), 0.3, 0.01);
}

TEST(ModuleSim, WrongLabelsNeverEqualTruth) {
  MlModuleSim module(0, "m", 6);
  module.set_state(ModuleState::kCompromised);
  for (int i = 0; i < 2000; ++i) {
    const auto a = module.classify(4, false, 0, 0.5, 1.0, 7);
    ASSERT_NE(a.label, 4);
    ASSERT_GE(a.label, 0);
    ASSERT_LT(a.label, 7);
  }
}

// ---- voters -----------------------------------------------------------------------

std::vector<ModuleAnswer> answers_of(const std::vector<int>& labels,
                                     int silents) {
  std::vector<ModuleAnswer> out;
  for (int l : labels) out.push_back({true, l});
  for (int s = 0; s < silents; ++s) out.push_back({false, 0});
  return out;
}

TEST(BlocVoter, CountsWrongAsABloc) {
  const BlocThresholdVoter voter(core::VotingScheme::bft(4, 1));
  // Three different wrong labels still make a perception error.
  const auto r = voter.vote(answers_of({1, 2, 3, 0}, 0), 0);
  EXPECT_EQ(r.verdict, core::Verdict::kError);
  EXPECT_EQ(r.wrong_votes, 3);
}

TEST(BlocVoter, CorrectAndInconclusiveAndUnavailable) {
  const BlocThresholdVoter voter(core::VotingScheme::bft(4, 1));
  EXPECT_EQ(voter.vote(answers_of({0, 0, 0, 5}, 0), 0).verdict,
            core::Verdict::kCorrect);
  EXPECT_EQ(voter.vote(answers_of({0, 0, 5, 5}, 0), 0).verdict,
            core::Verdict::kInconclusive);
  EXPECT_EQ(voter.vote(answers_of({0, 0}, 2), 0).verdict,
            core::Verdict::kUnavailable);
}

TEST(PluralityVoter, RequiresAgreementOnWrongLabel) {
  const PluralityThresholdVoter voter(core::VotingScheme::bft(4, 1));
  // Three distinct wrong labels: no bloc, inconclusive.
  EXPECT_EQ(voter.vote(answers_of({1, 2, 3, 0}, 0), 0).verdict,
            core::Verdict::kInconclusive);
  // Three identical wrong labels: error with that label decided.
  const auto r = voter.vote(answers_of({2, 2, 2, 0}, 0), 0);
  EXPECT_EQ(r.verdict, core::Verdict::kError);
  EXPECT_EQ(r.decided_label, 2);
}

TEST(PluralityVoter, NeverStricterThanBlocOnErrors) {
  // Property: if plurality declares an error, bloc does too.
  const core::VotingScheme scheme = core::VotingScheme::bft(4, 1);
  const PluralityThresholdVoter plurality(scheme);
  const BlocThresholdVoter bloc(scheme);
  util::RandomStream rng(8);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<int> labels;
    for (int m = 0; m < 4; ++m)
      labels.push_back(static_cast<int>(rng.uniform_index(3)));
    const auto a = answers_of(labels, 0);
    if (plurality.vote(a, 0).verdict == core::Verdict::kError) {
      EXPECT_EQ(bloc.vote(a, 0).verdict, core::Verdict::kError);
    }
  }
}

// ---- fault injector ---------------------------------------------------------------

TEST(FaultInjector, NoEventWhenNothingEligible) {
  FaultInjector injector({1000.0, 2000.0, 3.0,
                          core::FiringSemantics::kSingleServer},
                         1);
  EXPECT_FALSE(injector.sample_next(0.0, 0, 0, 0).has_value());
  EXPECT_TRUE(injector.sample_next(0.0, 1, 0, 0).has_value());
}

TEST(FaultInjector, SingleServerRateIndependentOfCount) {
  FaultInjector injector({100.0, 1e9, 1e9,
                          core::FiringSemantics::kSingleServer},
                         2);
  util::RunningStats one, four;
  for (int i = 0; i < 20000; ++i) {
    one.add(injector.sample_next(0.0, 1, 0, 0)->time);
    four.add(injector.sample_next(0.0, 4, 0, 0)->time);
  }
  EXPECT_NEAR(one.mean(), four.mean(), 3.0);
  EXPECT_NEAR(one.mean(), 100.0, 3.0);
}

TEST(FaultInjector, InfiniteServerScalesWithCount) {
  FaultInjector injector({100.0, 1e9, 1e9,
                          core::FiringSemantics::kInfiniteServer},
                         3);
  util::RunningStats four;
  for (int i = 0; i < 20000; ++i)
    four.add(injector.sample_next(0.0, 4, 0, 0)->time);
  EXPECT_NEAR(four.mean(), 25.0, 1.0);
}

TEST(FaultInjector, AttackWindowsMultiplyAndReportBoundaries) {
  FaultInjector injector({100.0, 2000.0, 3.0,
                          core::FiringSemantics::kSingleServer},
                         4);
  injector.add_attack_window({10.0, 20.0, 4.0});
  injector.add_attack_window({15.0, 30.0, 2.0});
  EXPECT_DOUBLE_EQ(injector.attack_multiplier_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.attack_multiplier_at(12.0), 4.0);
  EXPECT_DOUBLE_EQ(injector.attack_multiplier_at(17.0), 8.0);
  EXPECT_DOUBLE_EQ(injector.attack_multiplier_at(25.0), 2.0);
  EXPECT_DOUBLE_EQ(injector.attack_multiplier_at(35.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.next_boundary_after(0.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(injector.next_boundary_after(10.0).value(), 15.0);
  EXPECT_FALSE(injector.next_boundary_after(30.0).has_value());
}

TEST(FaultInjector, EventKindsMatchEligibility) {
  FaultInjector injector({1e9, 1e9, 1.0,
                          core::FiringSemantics::kSingleServer},
                         5);
  // Only failed modules -> only repairs possible (others astronomically
  // unlikely first).
  const auto ev = injector.sample_next(0.0, 0, 0, 2);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, LifecycleEventKind::kRepair);
}

// ---- rejuvenator ---------------------------------------------------------------------

TEST(Rejuvenator, DisabledNeverTicks) {
  TimedRejuvenator rej({false, 600.0, 3.0, 1}, 1);
  EXPECT_TRUE(std::isinf(rej.next_clock_tick()));
  EXPECT_EQ(rej.claim_starts(0, 0, 6), 0);
}

TEST(Rejuvenator, ClockRearmsAndBatchesGateOnG1) {
  TimedRejuvenator rej({true, 600.0, 3.0, 1}, 2);
  EXPECT_DOUBLE_EQ(rej.next_clock_tick(), 600.0);
  EXPECT_EQ(rej.on_clock_tick(0), 1);  // fresh batch
  EXPECT_DOUBLE_EQ(rej.next_clock_tick(), 1200.0);
  EXPECT_EQ(rej.pending_credits(), 1);
  // Second tick while credits pending: guard g1 blocks a new batch.
  EXPECT_EQ(rej.on_clock_tick(0), 0);
  // Tick while a module is rejuvenating: also blocked.
  TimedRejuvenator rej2({true, 600.0, 3.0, 1}, 3);
  EXPECT_EQ(rej2.on_clock_tick(1), 0);
}

TEST(Rejuvenator, ClaimRespectsGuardG2) {
  TimedRejuvenator rej({true, 600.0, 3.0, 1}, 4);
  rej.on_clock_tick(0);
  // A failed module occupies the only slot (r = 1).
  EXPECT_EQ(rej.claim_starts(1, 0, 5), 0);
  EXPECT_EQ(rej.pending_credits(), 1);
  // Slot free: one start claimed, credits drained.
  EXPECT_EQ(rej.claim_starts(0, 0, 5), 1);
  EXPECT_EQ(rej.pending_credits(), 0);
}

TEST(Rejuvenator, ClaimNeedsOperationalModules) {
  TimedRejuvenator rej({true, 600.0, 3.0, 2}, 5);
  rej.on_clock_tick(0);
  EXPECT_EQ(rej.pending_credits(), 2);
  EXPECT_EQ(rej.claim_starts(0, 0, 0), 0);  // nobody to rejuvenate
  EXPECT_EQ(rej.claim_starts(0, 0, 1), 1);  // only one candidate
  EXPECT_EQ(rej.pending_credits(), 1);
}

TEST(Rejuvenator, CompletionTimerLifecycle) {
  TimedRejuvenator rej({true, 600.0, 3.0, 1}, 6);
  EXPECT_TRUE(std::isinf(rej.next_completion()));
  rej.schedule_completion(100.0, 1);
  EXPECT_GT(rej.next_completion(), 100.0);
  rej.on_completion();
  EXPECT_TRUE(std::isinf(rej.next_completion()));
}

TEST(Rejuvenator, CompletionTimeScalesWithBatch) {
  TimedRejuvenator rej({true, 600.0, 3.0, 4}, 7);
  util::RunningStats one, three;
  for (int i = 0; i < 20000; ++i) {
    rej.schedule_completion(0.0, 1);
    one.add(rej.next_completion());
    rej.on_completion();
    rej.schedule_completion(0.0, 3);
    three.add(rej.next_completion());
    rej.on_completion();
  }
  EXPECT_NEAR(one.mean(), 3.0, 0.1);
  EXPECT_NEAR(three.mean(), 9.0, 0.25);
}

// ---- whole system -----------------------------------------------------------------

TEST(System, RunsAndCountsConsistently) {
  NVersionPerceptionSystem::Config cfg;
  cfg.params = core::SystemParameters::paper_six_version();
  cfg.seed = 7;
  cfg.frame_interval = 5.0;
  NVersionPerceptionSystem system(cfg);
  const auto result = system.run(5e4);
  EXPECT_EQ(result.frames, result.correct + result.errors +
                               result.inconclusive + result.unavailable);
  EXPECT_GT(result.frames, 9000u);
  EXPECT_GT(result.compromises, 0u);
  EXPECT_GT(result.rejuvenation_batches, 0u);
  double mass = 0.0;
  for (const auto& [state, fraction] : result.state_time_fraction) {
    const auto [i, j, k] = state;
    EXPECT_EQ(i + j + k, 6);
    mass += fraction;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(System, EmpiricalReliabilityTracksAnalyticGeneralized) {
  // End-to-end: Monte-Carlo system vs Eq. 1 with rigorous rewards.
  core::ReliabilityAnalyzer::Options opts;
  opts.convention = core::RewardConvention::kGeneralized;
  opts.attachment = core::RewardAttachment::kAppendixMatrices;
  const core::ReliabilityAnalyzer analyzer(opts);
  NVersionPerceptionSystem::Config cfg;
  cfg.params = core::SystemParameters::paper_six_version();
  cfg.seed = 17;
  cfg.frame_interval = 2.0;
  NVersionPerceptionSystem system(cfg);
  const auto result = system.run(4e6);
  const double analytic =
      analyzer.analyze(cfg.params).expected_reliability;
  EXPECT_NEAR(result.paper_reliability(), analytic, 0.01);
}

TEST(System, RejuvenationBeatsNoRejuvenationEmpirically) {
  auto run_with = [](const core::SystemParameters& params) {
    NVersionPerceptionSystem::Config cfg;
    cfg.params = params;
    cfg.seed = 23;
    cfg.frame_interval = 2.0;
    NVersionPerceptionSystem system(cfg);
    return system.run(2e6).paper_reliability();
  };
  EXPECT_GT(run_with(core::SystemParameters::paper_six_version()),
            run_with(core::SystemParameters::paper_four_version()));
}

TEST(System, AttackWindowDegradesReliability) {
  auto run_with = [](bool attack) {
    NVersionPerceptionSystem::Config cfg;
    cfg.params = core::SystemParameters::paper_four_version();
    cfg.seed = 29;
    cfg.frame_interval = 2.0;
    NVersionPerceptionSystem system(cfg);
    if (attack) system.add_attack_window({0.0, 5e5, 10.0});
    return system.run(5e5).paper_reliability();
  };
  EXPECT_LT(run_with(true), run_with(false) - 0.02);
}

TEST(System, PluralityVoterNeverWorseThanBloc) {
  auto run_with = [](bool plurality) {
    NVersionPerceptionSystem::Config cfg;
    cfg.params = core::SystemParameters::paper_four_version();
    cfg.plurality_voter = plurality;
    cfg.seed = 31;
    cfg.frame_interval = 2.0;
    NVersionPerceptionSystem system(cfg);
    return system.run(1e6).paper_reliability();
  };
  EXPECT_GE(run_with(true), run_with(false) - 0.005);
}

TEST(System, RequiresPLessThanAlpha) {
  NVersionPerceptionSystem::Config cfg;
  cfg.params = core::SystemParameters::paper_six_version();
  cfg.params.p = 0.6;  // > alpha = 0.5
  EXPECT_THROW(NVersionPerceptionSystem{cfg}, util::ContractViolation);
}

TEST(System, ModuleStateToString) {
  EXPECT_STREQ(to_string(ModuleState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(ModuleState::kRejuvenating), "rejuvenating");
}

}  // namespace
}  // namespace nvp::perception
