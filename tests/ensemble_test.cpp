// Tests for the ML-in-the-loop ensemble perception system.

#include <gtest/gtest.h>

#include "src/perception/ensemble_system.hpp"
#include "src/util/contracts.hpp"

namespace nvp::perception {
namespace {

/// Shared trained system (training the members dominates the runtime).
class EnsembleSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EnsemblePerceptionSystem::Config cfg;
    cfg.train_samples = 1500;
    cfg.calibration_samples = 600;
    cfg.seed = 5;
    cfg.frame_interval = 2.0;
    system_ = new EnsemblePerceptionSystem(cfg);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static EnsemblePerceptionSystem* system_;
};

EnsemblePerceptionSystem* EnsembleSystemTest::system_ = nullptr;

TEST_F(EnsembleSystemTest, MeasuredParametersAreSane) {
  EXPECT_GT(system_->measured_p(), 0.0);
  EXPECT_LT(system_->measured_p(), 0.3);
  EXPECT_GT(system_->measured_p_prime(), system_->measured_p() + 0.1);
  EXPECT_LE(system_->measured_p_prime(), 1.0);
  EXPECT_GT(system_->measured_alpha(), 0.0);
  EXPECT_LE(system_->measured_alpha(), 1.0);
  EXPECT_EQ(system_->clean_report().names.size(), 6u);
}

TEST_F(EnsembleSystemTest, CampaignCountsAreConsistent) {
  const auto result = system_->run(40000.0);
  EXPECT_EQ(result.frames, result.correct + result.errors +
                               result.inconclusive + result.unavailable);
  EXPECT_GT(result.frames, 10000u);
  EXPECT_GT(result.rejuvenation_batches, 0u);
  double mass = 0.0;
  for (const auto& [state, fraction] : result.state_time_fraction) {
    const auto [h, c, k] = state;
    EXPECT_EQ(h + c + k, 6);
    mass += fraction;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
  // With a trained ensemble and rejuvenation the system should be highly
  // reliable.
  EXPECT_GT(result.paper_reliability(), 0.85);
}

TEST(EnsembleSystem, RejectsUndersizedCalibration) {
  EnsemblePerceptionSystem::Config cfg;
  cfg.train_samples = 10;
  EXPECT_THROW(EnsemblePerceptionSystem{cfg}, util::ContractViolation);
}

TEST(EnsembleSystem, AdversarialChannelHurts) {
  // A system whose modules are all compromised from the start (via a very
  // fast compromise rate and no recovery) must be less reliable than the
  // healthy one.
  EnsemblePerceptionSystem::Config healthy_cfg;
  healthy_cfg.train_samples = 1200;
  healthy_cfg.calibration_samples = 400;
  healthy_cfg.seed = 9;
  healthy_cfg.params = core::SystemParameters::paper_four_version();
  healthy_cfg.params.mean_time_to_compromise = 1.0e9;  // effectively never
  EnsemblePerceptionSystem healthy(healthy_cfg);

  EnsemblePerceptionSystem::Config hostile_cfg = healthy_cfg;
  hostile_cfg.params.mean_time_to_compromise = 5.0;  // instantly hostile
  hostile_cfg.params.mean_time_to_failure = 1.0e9;   // stay compromised
  EnsemblePerceptionSystem hostile(hostile_cfg);

  const double healthy_reliability =
      healthy.run(20000.0).paper_reliability();
  const double hostile_reliability =
      hostile.run(20000.0).paper_reliability();
  EXPECT_GT(healthy_reliability, hostile_reliability + 0.05);
}

}  // namespace
}  // namespace nvp::perception
