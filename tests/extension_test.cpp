// Tests for the extensions beyond the paper: first-passage/absorption
// analysis, transient reliability, simulated transient profiles, and the
// architecture-space explorer.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/architecture_space.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/reliability.hpp"
#include "src/core/transient.hpp"
#include "src/markov/absorption.hpp"
#include "src/sim/transient_profile.hpp"
#include "src/util/contracts.hpp"

namespace nvp {
namespace {

using core::SystemParameters;
using linalg::DenseMatrix;

// ---- absorption -----------------------------------------------------------

TEST(Absorption, TwoStateExponentialHittingTime) {
  // up -> down at rate f: hitting time of "down" from "up" is Exp(f),
  // mean 1/f.
  DenseMatrix q(2, 2, 0.0);
  q(0, 0) = -0.25;
  q(0, 1) = 0.25;
  // state 1 absorbing (row zero)
  const auto result =
      markov::mean_time_to_absorption(q, {false, true});
  EXPECT_NEAR(result.expected_time[0], 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.expected_time[1], 0.0);
}

TEST(Absorption, BirthChainSumsStageMeans) {
  // 0 -> 1 -> 2 with rates 2 and 0.5: E[T] = 1/2 + 2 = 2.5.
  DenseMatrix q(3, 3, 0.0);
  q(0, 0) = -2.0;
  q(0, 1) = 2.0;
  q(1, 1) = -0.5;
  q(1, 2) = 0.5;
  const auto result =
      markov::mean_time_to_absorption(q, {false, false, true});
  EXPECT_NEAR(result.expected_time[0], 2.5, 1e-12);
  EXPECT_NEAR(result.expected_time[1], 2.0, 1e-12);
}

TEST(Absorption, RepairableSystemMttf) {
  // up <-> degraded, degraded -> failed. Closed-form MTTF from up:
  // with up->deg rate a, deg->up rate b, deg->fail rate c:
  // E_up = 1/a + E_deg; E_deg = 1/(b+c) + (b/(b+c)) E_up
  const double a = 0.1, b = 0.4, c = 0.05;
  DenseMatrix q(3, 3, 0.0);
  q(0, 0) = -a;
  q(0, 1) = a;
  q(1, 0) = b;
  q(1, 1) = -(b + c);
  q(1, 2) = c;
  const auto result =
      markov::mean_time_to_absorption(q, {false, false, true});
  const double e_up_expected =
      (1.0 / a + 1.0 / (b + c)) / (1.0 - b / (b + c));
  EXPECT_NEAR(result.expected_time[0], e_up_expected, 1e-9);
}

TEST(Absorption, UnreachableTargetIsInfinite) {
  // Two disconnected states; target only in the other component.
  DenseMatrix q(2, 2, 0.0);
  const auto result =
      markov::mean_time_to_absorption(q, {false, true});
  EXPECT_TRUE(std::isinf(result.expected_time[0]));
}

TEST(Absorption, UncertainAbsorptionIsInfinite) {
  // 0 can go to target (2) or to a dead end (1): expected hitting time of
  // the target is infinite because absorption is not almost sure.
  DenseMatrix q(3, 3, 0.0);
  q(0, 0) = -2.0;
  q(0, 1) = 1.0;
  q(0, 2) = 1.0;
  const auto result =
      markov::mean_time_to_absorption(q, {false, false, true});
  EXPECT_TRUE(std::isinf(result.expected_time[0]));
}

TEST(Absorption, ProbabilityByDeadlineMatchesClosedForm) {
  // Exp(r) hitting: P(T <= t) = 1 - exp(-r t).
  const double rate = 0.3;
  DenseMatrix q(2, 2, 0.0);
  q(0, 0) = -rate;
  q(0, 1) = rate;
  for (double t : {0.5, 2.0, 10.0}) {
    const auto p = markov::absorption_probability_by(q, {false, true}, t);
    EXPECT_NEAR(p[0], 1.0 - std::exp(-rate * t), 1e-10);
    EXPECT_NEAR(p[1], 1.0, 1e-12);
  }
}

TEST(Absorption, RejectsEmptyTarget) {
  DenseMatrix q(2, 2, 0.0);
  EXPECT_THROW(markov::mean_time_to_absorption(q, {false, false}),
               util::ContractViolation);
}

// ---- transient reliability ---------------------------------------------------

TEST(TransientReliability, StartsAtAllHealthyReward) {
  const core::TransientReliabilityAnalyzer analyzer;
  const auto params = SystemParameters::paper_four_version();
  const auto curve = analyzer.reliability_curve(params, {0.0});
  // At t = 0 the system is surely in (4, 0, 0): R = 0.95 at defaults.
  EXPECT_NEAR(curve[0].expected_reliability, 0.95, 1e-9);
}

TEST(TransientReliability, ConvergesToSteadyState) {
  const core::TransientReliabilityAnalyzer analyzer;
  const core::ReliabilityAnalyzer steady;
  const auto params = SystemParameters::paper_four_version();
  const auto curve = analyzer.reliability_curve(params, {5.0e5});
  EXPECT_NEAR(curve[0].expected_reliability,
              steady.analyze(params).expected_reliability, 1e-6);
}

TEST(TransientReliability, MonotoneDecayFromHealthyStart) {
  const core::TransientReliabilityAnalyzer analyzer;
  const auto params = SystemParameters::paper_four_version();
  const auto curve = analyzer.reliability_curve(
      params, {0.0, 1000.0, 3000.0, 10000.0, 30000.0});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LT(curve[i].expected_reliability,
              curve[i - 1].expected_reliability + 1e-12);
}

TEST(TransientReliability, RejectsRejuvenatingModel) {
  const core::TransientReliabilityAnalyzer analyzer;
  EXPECT_THROW(analyzer.reliability_curve(
                   SystemParameters::paper_six_version(), {1.0}),
               util::ContractViolation);
}

TEST(TransientReliability, UnavailabilityStatisticsAreConsistent) {
  const core::TransientReliabilityAnalyzer analyzer;
  const auto params = SystemParameters::paper_four_version();
  const double mttu = analyzer.mean_time_to_unavailability(params);
  EXPECT_GT(mttu, 1e5);  // repair is fast; losing 2 modules takes long
  // Probability within deadline grows with the deadline and is consistent
  // with an exponential-order tail at the MTTU scale.
  const double p_short =
      analyzer.unavailability_probability_by(params, 3600.0);
  const double p_long =
      analyzer.unavailability_probability_by(params, 10.0 * 3600.0);
  EXPECT_GT(p_long, p_short);
  EXPECT_LT(p_short, 0.01);
  EXPECT_NEAR(analyzer.unavailability_probability_by(params, 0.0), 0.0,
              1e-12);
}

// ---- simulated transient profile ------------------------------------------------

TEST(TransientProfile, MatchesAnalyticCurveForCtmcModel) {
  const auto params = SystemParameters::paper_four_version();
  const auto model = core::PerceptionModelFactory::build(params);
  const auto rewards = core::make_reliability_model(params);
  const sim::DspnSimulator simulator(model.net);
  const markov::MarkingReward reward = [&](const petri::Marking& m) {
    const int k = model.down(m);
    return k > 0 ? 0.0
                 : rewards->state_reliability(model.healthy(m),
                                              model.compromised(m), k);
  };
  const auto profile =
      sim::transient_profile(simulator, reward, 4000.0, 4, 64, 5);

  const core::TransientReliabilityAnalyzer analyzer;
  for (const auto& bucket : profile) {
    // Compare the bucket average against the analytic curve midpoint — a
    // first-order check; generous tolerance for the replication noise.
    const double mid = (bucket.time_lo + bucket.time_hi) / 2.0;
    const auto curve = analyzer.reliability_curve(params, {mid});
    EXPECT_NEAR(bucket.mean, curve[0].expected_reliability,
                std::max(5.0 * bucket.std_error, 0.01));
  }
}

TEST(TransientProfile, BucketsTileTheHorizon) {
  const auto params = SystemParameters::paper_four_version();
  const auto model = core::PerceptionModelFactory::build(params);
  const sim::DspnSimulator simulator(model.net);
  const auto profile = sim::transient_profile(
      simulator, [](const petri::Marking&) { return 1.0; }, 1000.0, 5, 4,
      9);
  ASSERT_EQ(profile.size(), 5u);
  for (std::size_t b = 0; b < profile.size(); ++b) {
    EXPECT_DOUBLE_EQ(profile[b].time_lo, 200.0 * b);
    EXPECT_DOUBLE_EQ(profile[b].time_hi, 200.0 * (b + 1));
    EXPECT_NEAR(profile[b].mean, 1.0, 1e-12);  // constant reward
  }
}

// ---- architecture space ------------------------------------------------------------

TEST(ArchitectureSpace, ContainsThePaperPoints) {
  core::ArchitectureSpaceExplorer explorer;
  const auto results =
      explorer.explore(SystemParameters::paper_six_version());
  bool found_4v = false, found_6v = false;
  for (const auto& result : results) {
    if (result.n == 4 && result.f == 1 && !result.rejuvenation)
      found_4v = true;
    if (result.n == 6 && result.f == 1 && result.r == 1 &&
        result.rejuvenation)
      found_6v = true;
    // Feasibility constraints hold for every emitted point.
    if (result.rejuvenation)
      EXPECT_GE(result.n, 3 * result.f + 2 * result.r + 1);
    else
      EXPECT_GE(result.n, 3 * result.f + 1);
    EXPECT_GT(result.expected_reliability, 0.0);
    EXPECT_LE(result.expected_reliability, 1.0);
  }
  EXPECT_TRUE(found_4v);
  EXPECT_TRUE(found_6v);
}

TEST(ArchitectureSpace, SortedByReliability) {
  core::ArchitectureSpaceExplorer explorer;
  const auto results =
      explorer.explore(SystemParameters::paper_six_version());
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].expected_reliability,
              results[i].expected_reliability);
}

TEST(ArchitectureSpace, BudgetFilterRespectsModuleCount) {
  core::ArchitectureSpaceExplorer explorer;
  const auto within = explorer.best_within_budget(
      SystemParameters::paper_six_version(), 6);
  ASSERT_FALSE(within.empty());
  for (const auto& result : within) EXPECT_LE(result.n, 6);
  // The known best at budget 6: the paper's rejuvenating six-version.
  EXPECT_EQ(within.front().n, 6);
  EXPECT_TRUE(within.front().rejuvenation);
}

TEST(ArchitectureSpace, LabelsAreDescriptive) {
  core::ArchitectureResult result;
  result.n = 6;
  result.f = 1;
  result.r = 1;
  result.rejuvenation = true;
  EXPECT_EQ(result.label(), "N=6 f=1 r=1 rejuv");
  result.rejuvenation = false;
  EXPECT_EQ(result.label(), "N=6 f=1 plain");
}

}  // namespace
}  // namespace nvp
