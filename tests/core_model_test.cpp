#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/optimizer.hpp"
#include "src/core/sweep.hpp"
#include "src/petri/structural.hpp"
#include "src/util/contracts.hpp"

namespace nvp::core {
namespace {

// ---- model factory -----------------------------------------------------------

TEST(ModelFactory, FourVersionStructure) {
  const auto model = PerceptionModelFactory::build(
      SystemParameters::paper_four_version());
  EXPECT_EQ(model.net.place_count(), 3u);
  EXPECT_EQ(model.net.transition_count(), 3u);
  EXPECT_FALSE(model.pmr.has_value());
  const auto m0 = model.net.initial_marking();
  EXPECT_EQ(model.healthy(m0), 4);
  EXPECT_EQ(model.compromised(m0), 0);
  EXPECT_EQ(model.down(m0), 0);
}

TEST(ModelFactory, SixVersionStructure) {
  const auto model = PerceptionModelFactory::build(
      SystemParameters::paper_six_version());
  EXPECT_EQ(model.net.place_count(), 7u);
  // Tc, Tf, Tr, Trc, Trt, Tac, Trj1, Trj2, Trj.
  EXPECT_EQ(model.net.transition_count(), 9u);
  ASSERT_TRUE(model.pmr && model.pac && model.prc && model.ptr);
  const auto m0 = model.net.initial_marking();
  EXPECT_EQ(model.healthy(m0), 6);
  EXPECT_EQ(m0[model.prc->index], 1);
}

TEST(ModelFactory, FourVersionStateSpaceSize) {
  const auto model = PerceptionModelFactory::build(
      SystemParameters::paper_four_version());
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  // (i, j, k) with i + j + k = 4 -> C(6, 2) = 15 states.
  EXPECT_EQ(g.size(), 15u);
  EXPECT_FALSE(g.has_deterministic());
}

TEST(ModelFactory, ModuleTokensConserved) {
  for (const auto& params : {SystemParameters::paper_four_version(),
                             SystemParameters::paper_six_version()}) {
    const auto model = PerceptionModelFactory::build(params);
    const auto g = petri::TangibleReachabilityGraph::build(model.net);
    // Module tokens (Pmh + Pmc + Pmf [+ Pmr]) are conserved at N.
    std::vector<double> weights(model.net.place_count(), 0.0);
    weights[model.pmh.index] = 1.0;
    weights[model.pmc.index] = 1.0;
    weights[model.pmf.index] = 1.0;
    if (model.pmr) weights[model.pmr->index] = 1.0;
    const auto rep = petri::check_token_invariant(g, weights);
    EXPECT_TRUE(rep.holds) << "violated at state " << rep.violating_state;
    EXPECT_DOUBLE_EQ(rep.expected, params.n_versions);
  }
}

TEST(ModelFactory, ClockTokenConserved) {
  const auto model = PerceptionModelFactory::build(
      SystemParameters::paper_six_version());
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  std::vector<double> weights(model.net.place_count(), 0.0);
  weights[model.prc->index] = 1.0;
  weights[model.ptr->index] = 1.0;
  const auto rep = petri::check_token_invariant(g, weights);
  EXPECT_TRUE(rep.holds);
  EXPECT_DOUBLE_EQ(rep.expected, 1.0);
}

TEST(ModelFactory, ClockAlwaysArmedInTangibleStates) {
  // Ptr always resolves through immediates: every tangible marking keeps
  // the clock token in Prc, so exactly one deterministic transition is
  // enabled everywhere — the precondition of the MRGP solver.
  const auto model = PerceptionModelFactory::build(
      SystemParameters::paper_six_version());
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  for (std::size_t s = 0; s < g.size(); ++s) {
    EXPECT_EQ(g.marking(s)[model.ptr->index], 0);
    EXPECT_EQ(g.deterministics(s).size(), 1u);
  }
}

TEST(ModelFactory, RejuvenatingBatchNeverExceedsR) {
  for (int r : {1, 2}) {
    SystemParameters params = SystemParameters::paper_six_version();
    params.max_rejuvenating = r;
    params.n_versions = 3 * params.max_faulty + 2 * r + 1;
    const auto model = PerceptionModelFactory::build(params);
    const auto g = petri::TangibleReachabilityGraph::build(model.net);
    const auto bounds = petri::place_bounds(g);
    EXPECT_LE(bounds[model.pmr->index], r) << "r = " << r;
  }
}

TEST(ModelFactory, InfiniteServerChangesDynamics) {
  SystemParameters params = SystemParameters::paper_four_version();
  params.semantics = FiringSemantics::kInfiniteServer;
  const auto model = PerceptionModelFactory::build(params);
  const auto tc = model.net.transition_id("Tc");
  auto m = model.net.initial_marking();  // 4 healthy
  EXPECT_NEAR(model.net.rate_or_weight(tc.index, m), 4.0 / 1523.0, 1e-12);
  SystemParameters single = SystemParameters::paper_four_version();
  const auto model_ss = PerceptionModelFactory::build(single);
  EXPECT_NEAR(model_ss.net.rate_or_weight(
                  model_ss.net.transition_id("Tc").index, m),
              1.0 / 1523.0, 1e-12);
}

TEST(ModelFactory, BuildValidatesParameters) {
  SystemParameters params = SystemParameters::paper_six_version();
  params.n_versions = 4;  // needs >= 6 with rejuvenation
  EXPECT_THROW(PerceptionModelFactory::build(params),
               util::ContractViolation);
}

// ---- analyzer ------------------------------------------------------------------

TEST(Analyzer, ReproducesPaperHeadlineNumbers) {
  const ReliabilityAnalyzer analyzer;
  const auto four =
      analyzer.analyze(SystemParameters::paper_four_version());
  // Paper: 0.8233477 (TimeNET). Our DSPN semantics land within 0.25%.
  EXPECT_NEAR(four.expected_reliability, 0.8233477, 0.0025);
  EXPECT_FALSE(four.used_dspn_solver);

  const auto six = analyzer.analyze(SystemParameters::paper_six_version());
  // Paper: 0.93464665. Within 0.5%.
  EXPECT_NEAR(six.expected_reliability, 0.93464665, 0.0045);
  EXPECT_TRUE(six.used_dspn_solver);
  // The headline claim: rejuvenation improves reliability by >= 13%.
  EXPECT_GT(six.expected_reliability / four.expected_reliability, 1.13);
}

TEST(Analyzer, AppendixAttachmentMakesDegradedStatesSafe) {
  // With the full appendix matrices, silent modules raise the per-state
  // reliability (the voter is harder to mislead), so the expected
  // reliability exceeds the operational-only attachment.
  ReliabilityAnalyzer::Options full;
  full.attachment = RewardAttachment::kAppendixMatrices;
  const double with_k = ReliabilityAnalyzer(full)
                            .analyze(SystemParameters::paper_six_version())
                            .expected_reliability;
  const double without_k =
      ReliabilityAnalyzer()
          .analyze(SystemParameters::paper_six_version())
          .expected_reliability;
  EXPECT_GT(with_k, without_k);
  EXPECT_LT(with_k - without_k, 0.02);
}

TEST(Analyzer, StateDistributionSumsToOne) {
  const ReliabilityAnalyzer analyzer;
  for (const auto& params : {SystemParameters::paper_four_version(),
                             SystemParameters::paper_six_version()}) {
    const auto result = analyzer.analyze(params);
    double total = 0.0;
    for (const auto& sp : result.state_distribution) {
      EXPECT_GE(sp.probability, 0.0);
      EXPECT_GE(sp.reliability, 0.0);
      EXPECT_LE(sp.reliability, 1.0);
      EXPECT_EQ(sp.healthy + sp.compromised + sp.down, params.n_versions);
      total += sp.probability;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Analyzer, ExpectedReliabilityConsistentWithDistribution) {
  const ReliabilityAnalyzer analyzer;
  const auto result = analyzer.analyze(SystemParameters::paper_six_version());
  double recomputed = 0.0;
  for (const auto& sp : result.state_distribution)
    recomputed += sp.probability * sp.reliability;
  EXPECT_NEAR(recomputed, result.expected_reliability, 1e-12);
}

TEST(Analyzer, RewardConventionsOrdering) {
  // Strict <= generalized for the same chain, by construction.
  for (const auto& params : {SystemParameters::paper_four_version(),
                             SystemParameters::paper_six_version()}) {
    ReliabilityAnalyzer::Options gen_opts;
    gen_opts.convention = RewardConvention::kGeneralized;
    ReliabilityAnalyzer::Options strict_opts;
    strict_opts.convention = RewardConvention::kStrict;
    const double gen = ReliabilityAnalyzer(gen_opts)
                           .analyze(params)
                           .expected_reliability;
    const double strict = ReliabilityAnalyzer(strict_opts)
                              .analyze(params)
                              .expected_reliability;
    EXPECT_LT(strict, gen);
  }
}

TEST(Analyzer, CustomRewardModelMustMatchN) {
  const ReliabilityAnalyzer analyzer;
  const PaperFourVersionReliability four_rewards(0.08, 0.5, 0.5);
  EXPECT_THROW(analyzer.analyze(SystemParameters::paper_six_version(),
                                four_rewards),
               util::ContractViolation);
}

TEST(Analyzer, RejuvenationHelpsAcrossSemantics) {
  for (auto semantics : {FiringSemantics::kSingleServer,
                         FiringSemantics::kInfiniteServer}) {
    auto four = SystemParameters::paper_four_version();
    auto six = SystemParameters::paper_six_version();
    four.semantics = semantics;
    six.semantics = semantics;
    const ReliabilityAnalyzer analyzer;
    EXPECT_GT(analyzer.analyze(six).expected_reliability,
              analyzer.analyze(four).expected_reliability);
  }
}

// ---- parameterized sweep over architectures (property-style) ---------------------

struct ArchCase {
  int n;
  int f;
  int r;
  bool rejuvenation;
};

class ArchitectureSweep : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchitectureSweep, AnalyzerProducesValidReliability) {
  const auto c = GetParam();
  SystemParameters params;
  params.n_versions = c.n;
  params.max_faulty = c.f;
  params.max_rejuvenating = c.r;
  params.rejuvenation = c.rejuvenation;
  ReliabilityAnalyzer::Options opts;
  opts.convention = RewardConvention::kGeneralized;
  const auto result = ReliabilityAnalyzer(opts).analyze(params);
  EXPECT_GT(result.expected_reliability, 0.0);
  EXPECT_LE(result.expected_reliability, 1.0);
  EXPECT_GT(result.tangible_states, 0u);
  EXPECT_EQ(result.used_dspn_solver, c.rejuvenation);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ArchitectureSweep,
    ::testing::Values(ArchCase{4, 1, 1, false}, ArchCase{5, 1, 1, false},
                      ArchCase{6, 1, 1, false}, ArchCase{7, 2, 1, false},
                      ArchCase{6, 1, 1, true}, ArchCase{7, 1, 1, true},
                      ArchCase{8, 1, 1, true}, ArchCase{8, 1, 2, true},
                      ArchCase{10, 2, 1, true}),
    [](const ::testing::TestParamInfo<ArchCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "f" + std::to_string(c.f) + "r" +
             std::to_string(c.r) + (c.rejuvenation ? "rejuv" : "plain");
    });

// ---- sweeps ------------------------------------------------------------------------

TEST(Sweep, LinspaceEndpointsAndSpacing) {
  const auto v = linspace(1.0, 3.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
}

TEST(Sweep, ReliabilityDecreasesWithP) {
  const ReliabilityAnalyzer analyzer;
  const auto points =
      sweep_parameter(analyzer, SystemParameters::paper_six_version(),
                      set_p(), {0.01, 0.05, 0.1, 0.2});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(points[i].expected_reliability,
              points[i - 1].expected_reliability);
}

TEST(Sweep, ReliabilityDecreasesWithAlphaGeneralized) {
  // Under the rigorous reward model every state's reliability is monotone
  // decreasing in alpha and the state probabilities do not depend on it,
  // so E[R] is monotone.
  ReliabilityAnalyzer::Options opts;
  opts.convention = RewardConvention::kGeneralized;
  const ReliabilityAnalyzer analyzer(opts);
  const auto points =
      sweep_parameter(analyzer, SystemParameters::paper_six_version(),
                      set_alpha(), {0.1, 0.4, 0.7, 1.0});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(points[i].expected_reliability,
              points[i - 1].expected_reliability);
}

TEST(Sweep, ReliabilityDropsOverAlphaRangePaperVerbatim) {
  // The verbatim appendix expressions are not perfectly monotone in alpha
  // (a consequence of the simplified terms), but the end-to-end drop of
  // Fig. 4(b) holds.
  const ReliabilityAnalyzer analyzer;
  const auto points =
      sweep_parameter(analyzer, SystemParameters::paper_six_version(),
                      set_alpha(), {0.1, 1.0});
  EXPECT_LT(points.back().expected_reliability,
            points.front().expected_reliability);
}

TEST(Sweep, ReliabilityIncreasesWithMttc) {
  const ReliabilityAnalyzer analyzer;
  const auto points = sweep_parameter(
      analyzer, SystemParameters::paper_four_version(),
      set_mean_time_to_compromise(), {500.0, 1500.0, 5000.0, 20000.0});
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GT(points[i].expected_reliability,
              points[i - 1].expected_reliability);
}

TEST(Sweep, FindCrossoversLocatesPPrimeThreshold) {
  // Fig. 4(d): the 6v (rejuvenating) and 4v curves cross near p' = 0.3.
  const ReliabilityAnalyzer analyzer;
  const auto crossovers = find_crossovers(
      analyzer, SystemParameters::paper_six_version(),
      SystemParameters::paper_four_version(), set_p_prime(),
      linspace(0.1, 0.9, 9), 0.005);
  ASSERT_FALSE(crossovers.empty());
  EXPECT_NEAR(crossovers[0].x, 0.3, 0.12);
}

// ---- optimizer ----------------------------------------------------------------------

TEST(Optimizer, FindsInteriorOptimumForFig3) {
  const ReliabilityAnalyzer analyzer;
  const auto optimum = optimize_rejuvenation_interval(
      analyzer, SystemParameters::paper_six_version(), 100.0, 3000.0, 12,
      5.0);
  // Paper: maximum near 400-450 s. Accept a generous band; what matters is
  // an interior optimum, not a boundary artifact.
  EXPECT_GT(optimum.x, 120.0);
  EXPECT_LT(optimum.x, 1200.0);
  EXPECT_GT(optimum.evaluations, 10u);
  // The optimum beats the default interval.
  const auto at_default =
      analyzer.analyze(SystemParameters::paper_six_version());
  EXPECT_GE(optimum.expected_reliability,
            at_default.expected_reliability - 1e-9);
}

TEST(Optimizer, GenericMaximizerOnSmoothFunction) {
  // Maximize reliability over mttc — monotone, so the optimum sits at the
  // upper bound.
  const ReliabilityAnalyzer analyzer;
  const auto optimum = maximize_reliability(
      analyzer, SystemParameters::paper_four_version(),
      [](SystemParameters& p, double v) { p.mean_time_to_compromise = v; },
      1000.0, 5000.0, 8, 1.0);
  EXPECT_NEAR(optimum.x, 5000.0, 20.0);
}

TEST(Optimizer, RequiresRejuvenatingModel) {
  const ReliabilityAnalyzer analyzer;
  EXPECT_THROW(optimize_rejuvenation_interval(
                   analyzer, SystemParameters::paper_four_version(), 100.0,
                   1000.0),
               util::ContractViolation);
}

}  // namespace
}  // namespace nvp::core
