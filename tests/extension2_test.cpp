// Tests for the second extension wave: detection-based recovery, the voter
// failure model (relaxing assumption A.4), sensitivity analysis, P-semiflow
// computation, and mission-average reliability.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/transient.hpp"
#include "src/petri/structural.hpp"
#include "src/util/contracts.hpp"

namespace nvp {
namespace {

using core::ReliabilityAnalyzer;
using core::SystemParameters;

// ---- detection-based recovery --------------------------------------------------

TEST(Detection, ImprovesReliabilityMonotonically) {
  const ReliabilityAnalyzer analyzer;
  double previous = 0.0;
  for (double rate : {0.0, 1.0 / 3600.0, 1.0 / 600.0, 1.0 / 60.0}) {
    auto params = SystemParameters::paper_four_version();
    params.detection_rate = rate;
    const double r = analyzer.analyze(params).expected_reliability;
    EXPECT_GT(r, previous);
    previous = r;
  }
}

TEST(Detection, AddsTransitionToTheNet) {
  auto params = SystemParameters::paper_four_version();
  params.detection_rate = 0.01;
  const auto model = core::PerceptionModelFactory::build(params);
  EXPECT_NO_THROW(model.net.transition_id("Td"));
  // Td moves a token C -> H.
  const auto td = model.net.transition_id("Td");
  petri::Marking m = model.net.initial_marking();
  m[model.pmh.index] = 3;
  m[model.pmc.index] = 1;
  ASSERT_TRUE(model.net.is_enabled(td.index, m));
  const auto next = model.net.fire(td.index, m);
  EXPECT_EQ(next[model.pmh.index], 4);
  EXPECT_EQ(next[model.pmc.index], 0);
}

TEST(Detection, ZeroRateLeavesModelUnchanged) {
  auto params = SystemParameters::paper_four_version();
  params.detection_rate = 0.0;
  const auto model = core::PerceptionModelFactory::build(params);
  EXPECT_THROW(model.net.transition_id("Td"), petri::NetError);
}

TEST(Detection, FastDetectionBeatsBlindRejuvenation) {
  // A detector with 60 s latency on a 4-version system outperforms the
  // 600 s blind rejuvenation of the 6-version system at the defaults
  // (bench_reactive_vs_proactive's headline observation).
  const ReliabilityAnalyzer analyzer;
  auto four = SystemParameters::paper_four_version();
  four.detection_rate = 1.0 / 60.0;
  EXPECT_GT(analyzer.analyze(four).expected_reliability,
            analyzer.analyze(SystemParameters::paper_six_version())
                .expected_reliability);
}

// ---- voter failure model -------------------------------------------------------

TEST(VoterFailure, DegradesReliability) {
  const ReliabilityAnalyzer analyzer;
  auto params = SystemParameters::paper_six_version();
  const double ideal = analyzer.analyze(params).expected_reliability;
  params.voter_can_fail = true;
  params.voter_mtbf = 1000.0;
  params.voter_mttr = 10.0;
  const double flaky = analyzer.analyze(params).expected_reliability;
  EXPECT_LT(flaky, ideal);
  // The loss matches the voter's unavailability to first order:
  // mttr / (mtbf + mttr) ~ 1%.
  EXPECT_NEAR((ideal - flaky) / ideal, 10.0 / 1010.0, 0.002);
}

TEST(VoterFailure, NegligibleForReliableVoter) {
  const ReliabilityAnalyzer analyzer;
  auto params = SystemParameters::paper_four_version();
  const double ideal = analyzer.analyze(params).expected_reliability;
  params.voter_can_fail = true;
  params.voter_mtbf = 1.0e8;
  params.voter_mttr = 1.0;
  EXPECT_NEAR(analyzer.analyze(params).expected_reliability, ideal, 1e-6);
}

TEST(VoterFailure, DoublesStateSpace) {
  auto params = SystemParameters::paper_four_version();
  const auto base = core::PerceptionModelFactory::build(params);
  const auto gb = petri::TangibleReachabilityGraph::build(base.net);
  params.voter_can_fail = true;
  const auto extended = core::PerceptionModelFactory::build(params);
  const auto ge = petri::TangibleReachabilityGraph::build(extended.net);
  EXPECT_EQ(ge.size(), 2 * gb.size());
  ASSERT_TRUE(extended.pvu && extended.pvd);
  EXPECT_TRUE(extended.voter_up(extended.net.initial_marking()));
}

TEST(VoterFailure, ValidationChecksVoterParameters) {
  auto params = SystemParameters::paper_four_version();
  params.voter_can_fail = true;
  params.voter_mtbf = 0.0;
  EXPECT_THROW(params.validate(), util::ContractViolation);
}

// ---- sensitivity ---------------------------------------------------------------

TEST(Sensitivity, ReportCoversExpectedParameters) {
  const ReliabilityAnalyzer analyzer;
  const auto four = core::sensitivity_report(
      analyzer, SystemParameters::paper_four_version());
  EXPECT_EQ(four.size(), 6u);  // no rejuvenation knobs
  const auto six = core::sensitivity_report(
      analyzer, SystemParameters::paper_six_version());
  EXPECT_EQ(six.size(), 8u);
  bool has_gamma = false;
  for (const auto& entry : six) has_gamma |= entry.parameter == "1/gamma";
  EXPECT_TRUE(has_gamma);
}

TEST(Sensitivity, SortedByDescendingSwing) {
  const ReliabilityAnalyzer analyzer;
  const auto report = core::sensitivity_report(
      analyzer, SystemParameters::paper_six_version());
  for (std::size_t i = 1; i < report.size(); ++i)
    EXPECT_GE(report[i - 1].swing(), report[i].swing());
}

TEST(Sensitivity, SignsMatchKnownMonotonicities) {
  const ReliabilityAnalyzer analyzer;
  const auto report = core::sensitivity_report(
      analyzer, SystemParameters::paper_four_version());
  for (const auto& entry : report) {
    if (entry.parameter == "p'" || entry.parameter == "p") {
      EXPECT_LT(entry.elasticity, 0.0) << entry.parameter;
    }
    if (entry.parameter == "1/lambda_c") {
      EXPECT_GT(entry.elasticity, 0.0) << entry.parameter;
    }
  }
}

TEST(Sensitivity, PPrimeDominatesWithoutRejuvenation) {
  const ReliabilityAnalyzer analyzer;
  const auto report = core::sensitivity_report(
      analyzer, SystemParameters::paper_four_version());
  EXPECT_EQ(report.front().parameter, "p'");
}

TEST(Sensitivity, TornadoRendersAllRows) {
  const ReliabilityAnalyzer analyzer;
  const auto report = core::sensitivity_report(
      analyzer, SystemParameters::paper_four_version());
  const std::string rendered = core::render_tornado(report);
  for (const auto& entry : report)
    EXPECT_NE(rendered.find(entry.parameter), std::string::npos);
}

// ---- P-semiflows ----------------------------------------------------------------

TEST(Semiflows, SimpleCycleHasSingleInvariant) {
  petri::PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto t1 = net.add_exponential("t1", 1.0);
  net.add_input_arc(t1, a);
  net.add_output_arc(t1, b);
  const auto t2 = net.add_exponential("t2", 1.0);
  net.add_input_arc(t2, b);
  net.add_output_arc(t2, a);
  const auto flows = petri::p_semiflows(net);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_DOUBLE_EQ(flows[0][a.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][b.index], 1.0);
}

TEST(Semiflows, WeightedConservation) {
  // t consumes 2 from A, produces 1 in B; invariant: A + 2B.
  petri::PetriNet net;
  const auto a = net.add_place("A", 4);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("t", 1.0);
  net.add_input_arc(t, a, 2);
  net.add_output_arc(t, b, 1);
  const auto back = net.add_exponential("back", 1.0);
  net.add_input_arc(back, b, 1);
  net.add_output_arc(back, a, 2);
  const auto flows = petri::p_semiflows(net);
  ASSERT_EQ(flows.size(), 1u);
  // Invariant A + 2B, in canonical smallest-integer form.
  EXPECT_DOUBLE_EQ(flows[0][a.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][b.index], 2.0);
}

TEST(Semiflows, FourVersionModelInvariantFoundStructurally) {
  const auto model = core::PerceptionModelFactory::build(
      SystemParameters::paper_four_version());
  const auto flows = petri::p_semiflows(model.net);
  ASSERT_EQ(flows.size(), 1u);  // module conservation
  EXPECT_DOUBLE_EQ(flows[0][model.pmh.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][model.pmc.index], 1.0);
  EXPECT_DOUBLE_EQ(flows[0][model.pmf.index], 1.0);
  // The structural invariant agrees with the reachability-level check.
  const auto g = petri::TangibleReachabilityGraph::build(model.net);
  EXPECT_TRUE(petri::check_token_invariant(g, flows[0]).holds);
}

TEST(Semiflows, VoterExtensionAddsSecondInvariant) {
  auto params = SystemParameters::paper_four_version();
  params.voter_can_fail = true;
  const auto model = core::PerceptionModelFactory::build(params);
  const auto flows = petri::p_semiflows(model.net);
  EXPECT_EQ(flows.size(), 2u);  // modules + voter token
}

TEST(Semiflows, RejectsMarkingDependentArcs) {
  const auto model = core::PerceptionModelFactory::build(
      SystemParameters::paper_six_version());
  EXPECT_THROW(petri::p_semiflows(model.net), petri::NetError);
  EXPECT_THROW(petri::incidence_matrix(model.net), petri::NetError);
}

TEST(Semiflows, NetWithoutInvariantsReturnsEmpty) {
  petri::PetriNet net;  // pure source: no conservation
  const auto p = net.add_place("P", 0);
  const auto t = net.add_exponential("t", 1.0);
  net.add_output_arc(t, p);
  EXPECT_TRUE(petri::p_semiflows(net).empty());
}

// ---- mission-average reliability --------------------------------------------------

TEST(MissionAverage, BetweenInstantaneousExtremes) {
  const core::TransientReliabilityAnalyzer analyzer;
  const auto params = SystemParameters::paper_four_version();
  const double avg = analyzer.average_reliability_over(params, 20000.0);
  const auto curve =
      analyzer.reliability_curve(params, {0.0, 20000.0});
  // The transient decays monotonically, so the average lies between the
  // endpoint values.
  EXPECT_LT(avg, curve[0].expected_reliability);
  EXPECT_GT(avg, curve[1].expected_reliability);
}

TEST(MissionAverage, ShortMissionNearInitialReward) {
  const core::TransientReliabilityAnalyzer analyzer;
  const auto params = SystemParameters::paper_four_version();
  EXPECT_NEAR(analyzer.average_reliability_over(params, 1.0), 0.95, 1e-3);
}

TEST(MissionAverage, LongMissionApproachesSteadyState) {
  const core::TransientReliabilityAnalyzer analyzer;
  const core::ReliabilityAnalyzer steady;
  const auto params = SystemParameters::paper_four_version();
  EXPECT_NEAR(analyzer.average_reliability_over(params, 5.0e6),
              steady.analyze(params).expected_reliability, 0.002);
}

}  // namespace
}  // namespace nvp
