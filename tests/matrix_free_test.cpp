// Matrix-free MRGP solves and the unified SolverConfig API: LinearOperator
// adapters, operator-driven GMRES/power iteration, the EmbeddedChainOperator
// against the dense oracle at 1e-10, Erlangization as an independent
// cross-check, the mfree fallback stage (including injected faults), lumped
// warm starts, kAuto dispatch, and SolverConfig round-trip/hash/alias
// behavior. The dense backend remains the oracle throughout.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/core/staged.hpp"
#include "src/fault/injector.hpp"
#include "src/linalg/iterative.hpp"
#include "src/linalg/operator.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/dtmc.hpp"
#include "src/markov/erlangization.hpp"
#include "src/markov/matrix_free.hpp"
#include "src/markov/sparse_assembly.hpp"
#include "src/markov/solver_config.hpp"
#include "src/markov/transient.hpp"
#include "src/petri/reachability.hpp"
#include "src/util/rng.hpp"

namespace nvp {
namespace {

using linalg::DenseMatrix;
using linalg::SparseMatrixCsr;
using linalg::Triplet;
using linalg::Vector;

petri::TangibleReachabilityGraph paper_graph(
    const core::SystemParameters& params) {
  const auto model = core::PerceptionModelFactory::build(params);
  return petri::TangibleReachabilityGraph::build(model.net);
}

markov::DspnSteadyStateResult solve_with_backend(
    const petri::TangibleReachabilityGraph& g, markov::SolverBackend backend) {
  markov::SolverConfig config;
  config.backend = backend;
  return markov::DspnSteadyStateSolver(config).solve(g);
}

void expect_agrees(const Vector& actual, const Vector& oracle, double tol,
                   const char* label) {
  ASSERT_EQ(actual.size(), oracle.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i)
    EXPECT_NEAR(actual[i], oracle[i], tol) << label << " state " << i;
}

// ---------------------------------------------------------------------------
// linalg: LinearOperator adapters and operator-driven iterative solvers.

TEST(LinearOperatorTest, AdaptersMatchMatrixAction) {
  std::vector<Triplet> triplets = {
      {0, 0, 2.0}, {0, 2, -1.0}, {1, 1, 3.0}, {2, 0, 0.5}, {2, 2, 4.0}};
  const SparseMatrixCsr sparse(3, 3, std::move(triplets));
  const DenseMatrix dense = sparse.to_dense();
  const linalg::CsrOperator csr_op(sparse);
  const linalg::DenseOperator dense_op(dense);
  EXPECT_EQ(csr_op.rows(), 3u);
  EXPECT_EQ(dense_op.cols(), 3u);
  const Vector x = {1.0, -2.0, 0.25};
  const Vector expected = sparse.multiply(x);
  expect_agrees(csr_op.apply(x), expected, 1e-15, "csr adapter");
  expect_agrees(dense_op.apply(x), expected, 1e-15, "dense adapter");
}

TEST(LinearOperatorTest, OperatorGmresMatchesCsrGmres) {
  // Diagonally dominant random system: both paths are unpreconditioned, so
  // the iterates (and the answer) must agree to rounding.
  util::RandomStream rng(7);
  const std::size_t n = 32;
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < n; ++r) {
    triplets.push_back({r, (r + 1) % n, rng.uniform(-1.0, 1.0)});
    triplets.push_back({r, (r + 5) % n, rng.uniform(-1.0, 1.0)});
    triplets.push_back({r, r, 6.0 + rng.uniform(-1.0, 1.0)});
  }
  const SparseMatrixCsr a(n, n, std::move(triplets));
  Vector b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));

  linalg::GmresOptions options;
  options.preconditioner = linalg::PreconditionerKind::kNone;
  const auto matrix_result = linalg::gmres(a, b, options);
  const linalg::CsrOperator op(a);
  const auto operator_result = linalg::gmres(op, b);
  ASSERT_TRUE(matrix_result.converged);
  ASSERT_TRUE(operator_result.converged);
  expect_agrees(operator_result.x, matrix_result.x, 1e-12, "operator gmres");

  // Warm start at the solution: the first cycle's residual is already below
  // tolerance, so the solver returns without iterating.
  const auto warm = linalg::gmres(op, b, {}, &matrix_result.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 1u);
}

TEST(LinearOperatorTest, OperatorPowerIterationFindsStationary) {
  // Small explicit DTMC; the operator path must match the matrix path.
  std::vector<Triplet> triplets = {{0, 0, 0.5}, {0, 1, 0.5}, {1, 0, 0.25},
                                   {1, 1, 0.25}, {1, 2, 0.5}, {2, 0, 1.0}};
  const SparseMatrixCsr p(3, 3, std::move(triplets));
  const auto matrix_result = linalg::stationary_power_iteration(p);
  ASSERT_TRUE(matrix_result.converged);
  // The operator contract is the LEFT action; build it from the transpose.
  class LeftAction final : public linalg::LinearOperator {
   public:
    explicit LeftAction(const SparseMatrixCsr& m) : m_(&m) {}
    std::size_t rows() const override { return m_->rows(); }
    std::size_t cols() const override { return m_->cols(); }
    void apply_into(const Vector& x, Vector& y) const override {
      y = m_->left_multiply(x);
    }

   private:
    const SparseMatrixCsr* m_;
  };
  const LeftAction left(p);
  const auto operator_result = linalg::stationary_power_iteration(left);
  ASSERT_TRUE(operator_result.converged);
  expect_agrees(operator_result.x, matrix_result.x, 1e-12, "operator power");
}

// ---------------------------------------------------------------------------
// markov: SparseUniformization omega-only propagation.

TEST(OmegaRowTest, MatchesRowPairAndIsLinear) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  const std::size_t n = g.size();
  std::vector<char> in_set(n, 0);
  double tau = 0.0;
  for (std::size_t s = 0; s < n; ++s)
    if (!g.deterministics(s).empty()) {
      in_set[s] = 1;
      tau = g.deterministics(s)[0].delay;
    }
  const auto q = markov::sparse_subordinated_generator(g, in_set);
  const markov::SparseUniformization u(q, tau);

  Vector mixed(n, 0.0);
  for (std::size_t s = 0; s < n; ++s)
    if (in_set[s]) {
      Vector e(n, 0.0);
      e[s] = 1.0;
      expect_agrees(u.omega_row(e), u.row_pair(s).omega, 1e-15, "omega row");
      mixed[s] = s % 2 == 0 ? 0.5 : -0.25;  // Krylov iterates go negative
    }
  // Linearity: omega(ax + by) = a omega(x) + b omega(y), so the signed
  // mixture must equal the signed mixture of the point-mass rows.
  Vector expected(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (mixed[s] == 0.0) continue;
    const Vector row = u.row_pair(s).omega;
    for (std::size_t t = 0; t < n; ++t) expected[t] += mixed[s] * row[t];
  }
  expect_agrees(u.omega_row(mixed), expected, 1e-12, "linearity");
}

// ---------------------------------------------------------------------------
// markov: the embedded-chain operator against the dense oracle.

TEST(EmbeddedChainOperatorTest, TransferPreservesMassAndMapsDistributions) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  const auto plan = markov::build_assembly_plan(g);
  const markov::EmbeddedChainOperator chain(g, plan);
  ASSERT_EQ(chain.states(), g.size());
  EXPECT_GT(chain.stored_nonzeros(), 0u);
  EXPECT_LT(chain.stored_nonzeros(), g.size() * g.size());

  for (std::size_t s = 0; s < g.size(); s += 7) {
    Vector e(g.size(), 0.0);
    e[s] = 1.0;
    const Vector row = chain.transfer_apply(e);  // row s of the embedded P
    double total = 0.0;
    for (double v : row) {
      EXPECT_GE(v, -1e-14);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << "row " << s;
  }
}

TEST(EmbeddedChainOperatorTest, BalanceResidualVanishesAtTheOracleSolution) {
  // Solve the embedded chain densely, then check the matrix-free balance
  // operator maps the oracle's nu to e_{n-1}: the two constructions agree
  // without ever materializing P on the operator side.
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  const auto plan = markov::build_assembly_plan(g);
  const markov::EmbeddedChainOperator chain(g, plan);
  const markov::TransferOperator transfer(chain);
  const markov::BalanceOperator balance(chain);
  const std::size_t n = g.size();

  const auto power = linalg::stationary_power_iteration(transfer);
  ASSERT_TRUE(power.converged);
  const Vector residual = balance.apply(power.x);
  for (std::size_t t = 0; t + 1 < n; ++t)
    EXPECT_NEAR(residual[t], 0.0, 1e-10) << "balance row " << t;
  EXPECT_NEAR(residual[n - 1], 1.0, 1e-10);
}

TEST(MatrixFreeEquivalenceTest, PaperConfigsMatchDenseOracle) {
  for (const auto& params : {core::SystemParameters::paper_four_version(),
                             core::SystemParameters::paper_six_version()}) {
    const auto g = paper_graph(params);
    if (!g.has_deterministic()) continue;
    const auto dense = solve_with_backend(g, markov::SolverBackend::kDense);
    const auto mfree =
        solve_with_backend(g, markov::SolverBackend::kMatrixFree);
    EXPECT_EQ(mfree.backend_used, markov::SolverBackend::kMatrixFree);
    expect_agrees(mfree.probabilities, dense.probabilities, 1e-10,
                  params.describe().c_str());
    // The operator's memory never approaches the two dense n^2 matrices.
    EXPECT_LT(mfree.matrix_nonzeros, dense.matrix_nonzeros / 4);
  }
}

TEST(MatrixFreeEquivalenceTest, ArchitectureVariantsMatchDenseOracle) {
  // Larger families than the paper's: more versions, deeper fault budgets.
  auto params = core::SystemParameters::paper_six_version();
  params.n_versions = 11;  // the floor for f = 2, r = 2 (n >= 3f + 2r + 1)
  params.max_faulty = 2;
  params.max_rejuvenating = 2;
  params.validate();
  const auto g = paper_graph(params);
  ASSERT_TRUE(g.has_deterministic());
  const auto dense = solve_with_backend(g, markov::SolverBackend::kDense);
  const auto mfree = solve_with_backend(g, markov::SolverBackend::kMatrixFree);
  expect_agrees(mfree.probabilities, dense.probabilities, 1e-10, "11v");
}

petri::PetriNet two_clock_net() {
  // Two deterministic transitions enabled in disjoint markings: exercises
  // multiple groups in one operator (per-group uniformization + firing).
  petri::PetriNet net("two_clock");
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto c = net.add_place("C", 0);
  const auto tick_a = net.add_deterministic("tickA", 2.0);
  net.add_input_arc(tick_a, a);
  net.add_output_arc(tick_a, b);
  const auto wobble = net.add_exponential("wobble", 0.3);  // leaves A's set
  net.add_input_arc(wobble, a);
  net.add_output_arc(wobble, b);
  const auto decay = net.add_exponential("decay", 1.0);
  net.add_input_arc(decay, b);
  net.add_output_arc(decay, c);
  const auto tick_c = net.add_deterministic("tickC", 3.0);
  net.add_input_arc(tick_c, c);
  net.add_output_arc(tick_c, a);
  const auto leak = net.add_exponential("leak", 0.2);  // leaves C's set
  net.add_input_arc(leak, c);
  net.add_output_arc(leak, a);
  return net;
}

TEST(MatrixFreeEquivalenceTest, MultipleDeterministicGroupsAgree) {
  const auto g = petri::TangibleReachabilityGraph::build(two_clock_net());
  const auto plan = markov::build_assembly_plan(g);
  ASSERT_EQ(plan.groups.size(), 2u);
  const auto dense = solve_with_backend(g, markov::SolverBackend::kDense);
  const auto mfree = solve_with_backend(g, markov::SolverBackend::kMatrixFree);
  expect_agrees(mfree.probabilities, dense.probabilities, 1e-10, "two clocks");
}

petri::PetriNet random_ring_net(std::uint64_t seed) {
  util::RandomStream rng(seed);
  petri::PetriNet net("mfree_fuzz" + std::to_string(seed));
  const int places = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<petri::PlaceId> ring;
  for (int p = 0; p < places; ++p)
    ring.push_back(net.add_place(
        "P" + std::to_string(p),
        p == 0 ? 1 + static_cast<int>(rng.uniform_index(3)) : 0));
  for (int p = 0; p < places; ++p) {
    const auto t = net.add_exponential("ring" + std::to_string(p),
                                       rng.uniform(0.05, 2.0));
    net.add_input_arc(t, ring[static_cast<std::size_t>(p)]);
    net.add_output_arc(t, ring[static_cast<std::size_t>((p + 1) % places)]);
  }
  const auto armed = net.add_place("armed", 1);
  const auto expired = net.add_place("expired", 0);
  const auto tick = net.add_deterministic("tick", rng.uniform(1.0, 20.0));
  net.add_input_arc(tick, armed);
  net.add_output_arc(tick, expired);
  const auto fix = net.add_immediate("fix");
  net.add_input_arc(fix, expired);
  net.add_output_arc(fix, armed);
  return net;
}

TEST(MatrixFreeEquivalenceTest, RandomizedNetsMatchDenseOracle) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g =
        petri::TangibleReachabilityGraph::build(random_ring_net(seed));
    const auto dense = solve_with_backend(g, markov::SolverBackend::kDense);
    const auto mfree =
        solve_with_backend(g, markov::SolverBackend::kMatrixFree);
    ASSERT_EQ(dense.probabilities.size(), mfree.probabilities.size());
    for (std::size_t i = 0; i < dense.probabilities.size(); ++i)
      EXPECT_NEAR(mfree.probabilities[i], dense.probabilities[i], 1e-10)
          << "seed " << seed << " state " << i;
  }
}

// ---------------------------------------------------------------------------
// Erlangization: the independent cross-check.

TEST(ErlangizationTest, ConvergesToTheMrgpSolutionAsStagesGrow) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  const auto plan = markov::build_assembly_plan(g);
  const auto oracle = solve_with_backend(g, markov::SolverBackend::kDense);

  double previous_gap = 0.0;
  bool first = true;
  for (const std::size_t stages : {2u, 8u, 32u}) {
    const Vector erlang = markov::erlangization_stationary(g, plan, stages);
    double gap = 0.0;
    for (std::size_t s = 0; s < g.size(); ++s)
      gap = std::max(gap, std::fabs(erlang[s] - oracle.probabilities[s]));
    if (!first)
      EXPECT_LT(gap, previous_gap) << "stages " << stages;  // O(1/k) decay
    previous_gap = gap;
    first = false;
  }
  EXPECT_LT(previous_gap, 1e-2);  // k = 32 sits well inside the envelope
}

TEST(ErlangizationTest, SolverSelfCheckRunsWhenConfigured) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  markov::SolverConfig config;
  config.backend = markov::SolverBackend::kMatrixFree;
  config.erlang_stages = 8;
  const auto checked = markov::DspnSteadyStateSolver(config).solve(g);
  const auto oracle = solve_with_backend(g, markov::SolverBackend::kDense);
  expect_agrees(checked.probabilities, oracle.probabilities, 1e-10,
                "self-checked solve");
}

// ---------------------------------------------------------------------------
// Fallback chain: the mfree stage, with and without injected faults.

TEST(MfreeFallbackStageTest, SolvesExplicitProblems) {
  // A chain of just the mfree stage must still solve an assembled sparse
  // system (the stage wraps the CSR balance matrix as an operator).
  std::vector<Triplet> triplets = {{0, 0, 0.5}, {0, 1, 0.5}, {1, 0, 0.25},
                                   {1, 1, 0.25}, {1, 2, 0.5}, {2, 0, 1.0}};
  const SparseMatrixCsr p(3, 3, std::move(triplets));
  markov::FallbackOptions chain;
  chain.stages = {markov::FallbackStage::kMatrixFree};
  const Vector nu = markov::dtmc_stationary(p, chain);
  const Vector oracle = markov::dtmc_stationary(p.to_dense());
  expect_agrees(nu, oracle, 1e-12, "mfree stage on explicit problem");
}

TEST(MfreeFallbackStageTest, InjectedFaultFallsBackToPowerIteration) {
  auto& injector = fault::Injector::global();
  injector.reset();
  injector.set(fault::Site::kMatrixFree, 1.0, 31);
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  // backend=mfree with the default chain: [mfree, power] after filtering.
  // The injected mfree failure must degrade to power iteration, not abort.
  const auto result = solve_with_backend(g, markov::SolverBackend::kMatrixFree);
  const std::uint64_t fired = injector.decisions(fault::Site::kMatrixFree);
  injector.reset();
  EXPECT_GT(fired, 0u);
  const auto oracle = solve_with_backend(g, markov::SolverBackend::kDense);
  expect_agrees(result.probabilities, oracle.probabilities, 1e-8,
                "power-iteration recovery");
}

// ---------------------------------------------------------------------------
// Lumped warm start.

TEST(LumpedWarmStartTest, MatchesColdSolveOnThePaperModel) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto structure = core::staged_structure(params, /*use_cache=*/false);
  ASSERT_GT(structure->plan.lumping_classes, 0u);
  ASSERT_EQ(structure->plan.lumping.size(), structure->graph.size());

  markov::SolverConfig warm;
  warm.backend = markov::SolverBackend::kMatrixFree;
  markov::SolverConfig cold = warm;
  cold.lumped_warm_start = false;
  const auto warm_result =
      markov::DspnSteadyStateSolver(warm).solve(structure->graph,
                                                structure->plan);
  const auto cold_result =
      markov::DspnSteadyStateSolver(cold).solve(structure->graph,
                                                structure->plan);
  expect_agrees(warm_result.probabilities, cold_result.probabilities, 1e-10,
                "warm vs cold");

  const markov::EmbeddedChainOperator chain(structure->graph, structure->plan);
  const Vector guess = markov::lumped_warm_start(
      chain, structure->plan.lumping, structure->plan.lumping_classes);
  double total = 0.0;
  for (double v : guess) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// kAuto dispatch.

TEST(DispatchBackendTest, ExplicitBackendAlwaysWins) {
  markov::SolverConfig config;
  config.backend = markov::SolverBackend::kSparse;
  EXPECT_EQ(markov::dispatch_backend(config, 10, true),
            markov::SolverBackend::kSparse);
  EXPECT_EQ(markov::dispatch_backend(config, 1000000, false),
            markov::SolverBackend::kSparse);
}

TEST(DispatchBackendTest, AutoFollowsTheModelClassThresholds) {
  markov::SolverConfig config;  // kAuto
  // Pure CTMC: dense below sparse_threshold, sparse at/above.
  EXPECT_EQ(markov::dispatch_backend(config, config.sparse_threshold - 1,
                                     false),
            markov::SolverBackend::kDense);
  EXPECT_EQ(markov::dispatch_backend(config, config.sparse_threshold, false),
            markov::SolverBackend::kSparse);
  // MRGP: dense below the matrix-free threshold, matrix-free at/above —
  // never the explicit-sparse assembly.
  EXPECT_EQ(markov::dispatch_backend(
                config, config.mrgp_matrix_free_threshold - 1, true),
            markov::SolverBackend::kDense);
  EXPECT_EQ(markov::dispatch_backend(config,
                                     config.mrgp_matrix_free_threshold, true),
            markov::SolverBackend::kMatrixFree);
  EXPECT_EQ(markov::dispatch_backend(config, 1000000, true),
            markov::SolverBackend::kMatrixFree);
}

TEST(DispatchBackendTest, PublishedBenchRowsRouteToTheRecordedBackend) {
  // Every scaling row in the recorded BENCH_mrgp_scaling.json artifact must
  // still be routed to its recorded backend by today's kAuto dispatch — a
  // threshold change that silently re-routes the published measurements has
  // to re-record the artifact.
  std::ifstream in(std::string(NVP_SOURCE_DIR) +
                   "/bench_results/BENCH_mrgp_scaling.json");
  ASSERT_TRUE(in.good()) << "recorded BENCH_mrgp_scaling.json missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  // Scaling rows are the only objects carrying both "states" and "backend".
  const std::regex row_re(
      "\\{[^{}]*\"states\":\\s*(\\d+)[^{}]*\"backend\":\\s*\"([a-z]+)\""
      "[^{}]*\\}");
  const markov::SolverConfig defaults;  // kAuto
  std::size_t rows = 0;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), row_re);
       it != std::sregex_iterator(); ++it, ++rows) {
    const std::size_t states = std::stoull((*it)[1].str());
    const std::string recorded = (*it)[2].str();
    const auto dispatched = markov::dispatch_backend(defaults, states,
                                                     /*has_deterministic=*/true);
    EXPECT_EQ(markov::to_string(dispatched), recorded)
        << "row with " << states << " states";
  }
  EXPECT_GE(rows, 4u) << "expected the four published scaling rows";
}

// ---------------------------------------------------------------------------
// SolverConfig: round-trip, hashing, aliases, parse errors.

TEST(SolverConfigTest, DescribeParsesBackToAnEqualConfig) {
  markov::SolverConfig config;
  config.backend = markov::SolverBackend::kMatrixFree;
  config.clamp_epsilon = 3.5e-13;
  config.gmres_restart = 37;
  config.gmres_tolerance = 1e-11;
  config.erlang_stages = 4;
  config.lumped_warm_start = false;
  config.fallback.stages = {markov::FallbackStage::kMatrixFree,
                            markov::FallbackStage::kDenseLu};
  config.fallback.attempt_deadline_seconds = 2.5;
  const auto round_tripped = markov::SolverConfig::parse(config.describe());
  EXPECT_EQ(round_tripped.canonical_hash(), config.canonical_hash());
  EXPECT_EQ(round_tripped.describe(), config.describe());
}

TEST(SolverConfigTest, EveryKnobChangesTheCanonicalHash) {
  const markov::SolverConfig base;
  const auto mutate = [](auto&& set) {
    markov::SolverConfig config;
    set(config);
    return config.canonical_hash();
  };
  const std::uint64_t base_hash = base.canonical_hash();
  EXPECT_NE(mutate([](auto& c) { c.backend = markov::SolverBackend::kDense; }),
            base_hash);
  EXPECT_NE(mutate([](auto& c) {
              c.ctmc_method = markov::SteadyStateMethod::kPowerIteration;
            }),
            base_hash);
  EXPECT_NE(mutate([](auto& c) { c.clamp_epsilon = 1e-14; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.sparse_threshold = 129; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.mrgp_sparse_threshold = 513; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.mrgp_matrix_free_threshold = 193; }),
            base_hash);
  EXPECT_NE(mutate([](auto& c) { c.dense_retry_limit = 1; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.gmres_restart = 81; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.gmres_max_iterations = 1; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.gmres_tolerance = 1e-8; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.erlang_stages = 2; }), base_hash);
  EXPECT_NE(mutate([](auto& c) { c.lumped_warm_start = false; }), base_hash);
  EXPECT_NE(mutate([](auto& c) {
              c.fallback.stages = {markov::FallbackStage::kPowerIteration};
            }),
            base_hash);
  EXPECT_NE(mutate([](auto& c) {
              c.fallback.attempt_deadline_seconds = 1.0;
            }),
            base_hash);
}

TEST(SolverConfigTest, BareBackendShorthandAndPlusChains) {
  const auto config =
      markov::SolverConfig::parse("mfree,fallback=mfree+power,gmres-tol=1e-12");
  EXPECT_EQ(config.backend, markov::SolverBackend::kMatrixFree);
  ASSERT_EQ(config.fallback.stages.size(), 2u);
  EXPECT_EQ(config.fallback.stages[0], markov::FallbackStage::kMatrixFree);
  EXPECT_EQ(config.fallback.stages[1], markov::FallbackStage::kPowerIteration);
  EXPECT_EQ(config.gmres_tolerance, 1e-12);
}

TEST(SolverConfigTest, ApplyIsAllOrNothing) {
  markov::SolverConfig config;
  const std::uint64_t before = config.canonical_hash();
  // The first entry is valid, the second is not: nothing may stick.
  EXPECT_THROW(config.apply("gmres-restart=9,unknown-key=1"),
               std::invalid_argument);
  EXPECT_EQ(config.canonical_hash(), before);
  EXPECT_THROW(config.apply("gmres-tol=not-a-number"), std::invalid_argument);
  EXPECT_THROW(config.apply("backend=quantum"), std::invalid_argument);
  EXPECT_THROW(config.apply("fallback=warp"), std::invalid_argument);
  EXPECT_EQ(config.canonical_hash(), before);
}

TEST(SolverConfigTest, HistoricOptionsAliasIsTheSameType) {
  static_assert(std::is_same_v<markov::DspnSteadyStateSolver::Options,
                               markov::SolverConfig>,
                "the historic Options spelling must alias SolverConfig");
  EXPECT_TRUE(markov::parse_backend("mfree").has_value());
  EXPECT_STREQ(markov::to_string(markov::SolverBackend::kMatrixFree), "mfree");
}

TEST(SolverConfigTest, CacheKeysFollowTheCanonicalHash) {
  const auto params = core::SystemParameters::paper_six_version();
  core::ReliabilityAnalyzer::Options a;
  core::ReliabilityAnalyzer::Options b;
  b.solver.gmres_restart = 81;  // any knob, not just the historic subset
  EXPECT_NE(core::analysis_cache_key(params, a),
            core::analysis_cache_key(params, b));
  EXPECT_NE(core::rates_stage_key(params, a.solver),
            core::rates_stage_key(params, b.solver));
  core::ReliabilityAnalyzer::Options c;
  c.solver.lumped_warm_start = false;
  EXPECT_NE(core::analysis_cache_key(params, a),
            core::analysis_cache_key(params, c));
}

}  // namespace
}  // namespace nvp
