#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "src/util/ascii_chart.hpp"
#include "src/util/cli.hpp"
#include "src/util/contracts.hpp"
#include "src/util/csv.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/string_util.hpp"
#include "src/util/table.hpp"

namespace nvp::util {
namespace {

// ---- contracts -------------------------------------------------------------

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(NVP_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(NVP_EXPECTS(1 == 1));
}

TEST(Contracts, MessageContainsExpressionAndLocation) {
  try {
    NVP_EXPECTS_MSG(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("extra context"), std::string::npos);
  }
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, SplitMix64MatchesReferenceSequence) {
  // Reference values for seed 1234567 (from the public-domain reference
  // implementation).
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());  // deterministic
  SplitMix64 sm3(1);
  EXPECT_NE(first, sm3.next());  // seed-sensitive
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256StarStar a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Xoshiro256StarStar a2(42), c2(43);
  EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b = a;  // same state
  b.jump();
  std::set<std::uint64_t> from_a, from_b;
  for (int i = 0; i < 1000; ++i) {
    from_a.insert(a.next());
    from_b.insert(b.next());
  }
  std::vector<std::uint64_t> overlap;
  std::set_intersection(from_a.begin(), from_a.end(), from_b.begin(),
                        from_b.end(), std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(Rng, Uniform01InRange) {
  RandomStream rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  RandomStream rng(2);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  RandomStream rng(3);
  RunningStats stats;
  const double rate = 0.25;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.08);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  RandomStream rng(4);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
  RandomStream rng(5);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  RandomStream rng(6);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  RandomStream rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  RandomStream rng(8);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, DiscreteRespectsWeights) {
  RandomStream rng(9);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.discrete(w)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  RandomStream rng(10);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), ContractViolation);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.discrete(negative), ContractViolation);
}

TEST(Rng, DiscreteSkipsZeroWeightEntries) {
  RandomStream rng(11);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.discrete(w), 1u);
}

TEST(Rng, PoissonSmallMean) {
  RandomStream rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i)
    stats.add(static_cast<double>(rng.poisson(2.5)));
  EXPECT_NEAR(stats.mean(), 2.5, 0.05);
  EXPECT_NEAR(stats.variance(), 2.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  RandomStream rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i)
    stats.add(static_cast<double>(rng.poisson(100.0)));
  EXPECT_NEAR(stats.mean(), 100.0, 0.5);
}

TEST(Rng, PermutationIsAPermutation) {
  RandomStream rng(14);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SplitStreamsDiffer) {
  RandomStream a(15);
  RandomStream b = a.split();
  bool all_equal = true;
  for (int i = 0; i < 100; ++i)
    if (a.uniform01() != b.uniform01()) all_equal = false;
  EXPECT_FALSE(all_equal);
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsMergeMatchesCombined) {
  RunningStats a, b, all;
  RandomStream rng(16);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(Stats, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
}

TEST(Stats, StudentTCriticalValues) {
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 5), 4.032, 1e-3);
  // Large df approaches the normal quantile.
  EXPECT_NEAR(student_t_critical(0.95, 10000), 1.96, 0.01);
}

TEST(Stats, ConfidenceIntervalCoversTrueMean) {
  // 95% CI should cover the true mean in roughly 95% of replications.
  RandomStream rng(17);
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    RunningStats s;
    for (int i = 0; i < 30; ++i) s.add(rng.normal(10.0, 4.0));
    if (confidence_interval(s, 0.95).contains(10.0)) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(reps), 0.95, 0.04);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 1u);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}


// ---- logging ---------------------------------------------------------------

TEST(Log, LevelFilterDropsBelowThreshold) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Calls below the threshold must be no-ops (observable only through the
  // absence of a crash and the level query; stderr content is not captured
  // here).
  log_line(LogLevel::kDebug, "dropped");
  log_line(LogLevel::kInfo, "dropped");
  NVP_LOG_DEBUG << "dropped " << 42;
  set_log_level(original);
}

TEST(Log, StreamBuildsOneLine) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  // Exercise the RAII stream path at every level.
  NVP_LOG_DEBUG << "debug " << 1;
  NVP_LOG_INFO << "info " << 2.5;
  NVP_LOG_WARN << "warn " << 'c';
  NVP_LOG_ERROR << "error " << std::string("s");
  set_log_level(original);
}

// ---- csv -------------------------------------------------------------------

TEST(Csv, EscapingRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "nvp_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row(std::vector<std::string>{"1", "2"});
    w.row(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 3), "3.5");
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = ::testing::TempDir() + "nvp_csv_test2.csv";
  CsvWriter w(path, {"x", "y"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}),
               ContractViolation);
}

// ---- table and chart --------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.row({"alpha", "0.5"});
  t.row({"a-very-long-name", "1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-very-long-name"), std::string::npos);
  // All lines equally wide.
  const auto lines = split(out, '\n');
  std::size_t width = lines[0].size();
  for (const auto& l : lines) {
    if (!l.empty()) {
      EXPECT_EQ(l.size(), width);
    }
  }
}

TEST(Table, NumericRowFormatting) {
  TextTable t({"v"});
  t.row_numeric({1.23456789}, 3);
  EXPECT_NE(t.render().find("1.235"), std::string::npos);
}

TEST(Chart, RendersSeriesAndLegend) {
  AsciiChart chart(40, 10);
  Series s;
  s.name = "line";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  chart.add_series(s);
  chart.set_labels("x", "y");
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("line"), std::string::npos);
}

TEST(Chart, RejectsEmptyAndMismatched) {
  AsciiChart chart;
  EXPECT_THROW(chart.render(), ContractViolation);
  Series bad;
  bad.name = "bad";
  bad.x = {1.0};
  bad.y = {1.0, 2.0};
  EXPECT_THROW(chart.add_series(bad), ContractViolation);
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, ParsesKeyValueForms) {
  // Note: "--key value" greedily consumes the next non-flag token, so
  // positionals must precede flag-with-value pairs.
  const char* argv[] = {"prog", "pos", "--a=1", "--b", "2", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get("a", ""), "1");
  EXPECT_EQ(args.get("b", ""), "2");
  EXPECT_TRUE(args.has("flag"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
  EXPECT_EQ(args.keys().size(), 3u);
}

TEST(Cli, NumericAccessorsAndFallbacks) {
  const char* argv[] = {"prog", "--x=2.5", "--n=7"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_EQ(args.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 9.5), 9.5);
  EXPECT_EQ(args.get_int("missing", -1), -1);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--x=2.5abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
}

// ---- string_util -------------------------------------------------------------

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(StringUtil, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "/"), "a/b//c");
}

TEST(StringUtil, TrimAndStartsWith) {
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

}  // namespace
}  // namespace nvp::util
