// Sparse solver path: CSR assembly, ILU0/GMRES, sparse uniformization, and
// dense-vs-sparse backend equivalence on the paper configurations. The dense
// path is the oracle throughout — every comparison here pins the sparse
// backend to it at 1e-10 or tighter.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/linalg/iterative.hpp"
#include "src/linalg/lu.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/dtmc.hpp"
#include "src/markov/sparse_assembly.hpp"
#include "src/markov/transient.hpp"
#include "src/petri/reachability.hpp"
#include "src/util/rng.hpp"

namespace nvp {
namespace {

using linalg::DenseMatrix;
using linalg::SparseMatrixCsr;
using linalg::Triplet;
using linalg::Vector;

// ---------------------------------------------------------------------------
// linalg: ILU0 and GMRES building blocks.

/// Diagonally dominant random sparse test matrix (well conditioned, full
/// structural diagonal) plus its dense twin.
std::pair<SparseMatrixCsr, DenseMatrix> random_system(std::uint64_t seed,
                                                      std::size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> column(0, n - 1);
  std::vector<Triplet> triplets;
  DenseMatrix dense(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (int k = 0; k < 4; ++k) {
      const std::size_t c = column(rng);
      if (c == r) continue;
      const double v = value(rng);
      triplets.push_back({r, c, v});
      dense(r, c) += v;
    }
    const double diag = 6.0 + value(rng);
    triplets.push_back({r, r, diag});
    dense(r, r) += diag;
  }
  return {SparseMatrixCsr(n, n, std::move(triplets)), std::move(dense)};
}

TEST(Ilu0Test, ExactOnTriangularPattern) {
  // For a lower-triangular matrix the ILU0 pattern is complete, so the
  // factorization is exact and apply() is a true solve.
  std::vector<Triplet> triplets = {{0, 0, 4.0}, {1, 0, -1.0}, {1, 1, 3.0},
                                   {2, 1, -2.0}, {2, 2, 5.0}};
  const SparseMatrixCsr a(3, 3, std::move(triplets));
  const auto ilu = linalg::Ilu0::factor(a);
  ASSERT_TRUE(ilu.has_value());
  const Vector b = {4.0, 2.0, 1.0};
  const Vector x = ilu->apply(b);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(Ilu0Test, RejectsMissingDiagonal) {
  std::vector<Triplet> triplets = {{0, 1, 1.0}, {1, 0, 1.0}};
  const SparseMatrixCsr a(2, 2, std::move(triplets));
  EXPECT_FALSE(linalg::Ilu0::factor(a).has_value());
}

TEST(GmresTest, MatchesDenseLuOnRandomSystems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 40;
    auto [sparse, dense] = random_system(seed, n);
    Vector b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      b[i] = std::sin(static_cast<double>(i + seed));
    const auto result = linalg::gmres(sparse, b);
    ASSERT_TRUE(result.converged) << "seed " << seed;
    const Vector expected = linalg::LuDecomposition(std::move(dense)).solve(b);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(result.x[i], expected[i], 1e-9) << "seed " << seed;
  }
}

TEST(GmresTest, JacobiAndUnpreconditionedAlsoConverge) {
  auto [sparse, dense] = random_system(11, 30);
  Vector b(30, 1.0);
  for (auto kind : {linalg::PreconditionerKind::kNone,
                    linalg::PreconditionerKind::kJacobi}) {
    linalg::GmresOptions options;
    options.preconditioner = kind;
    const auto result = linalg::gmres(sparse, b, options);
    EXPECT_TRUE(result.converged);
    const Vector ax = sparse.multiply(result.x);
    for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// markov: CSR assembly against the dense constructions.

petri::TangibleReachabilityGraph paper_graph(
    const core::SystemParameters& params) {
  const auto model = core::PerceptionModelFactory::build(params);
  return petri::TangibleReachabilityGraph::build(model.net);
}

TEST(SparseAssemblyTest, GeneratorMatchesDenseCtmc) {
  const auto params = core::SystemParameters::paper_four_version();
  const auto g = paper_graph(params);
  const auto dense = markov::Ctmc::from_graph(g).generator;
  const auto sparse = markov::sparse_generator(g);
  ASSERT_EQ(sparse.rows(), dense.rows());
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      EXPECT_NEAR(sparse.at(r, c), dense(r, c), 1e-14);
  EXPECT_LT(sparse.nonzeros(), dense.rows() * dense.cols());
}

TEST(SparseAssemblyTest, UniformizationRowsMatchDenseExponential) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);
  const std::size_t n = g.size();
  // Subordinated generator of the (single) deterministic transition group.
  std::vector<char> in_set(n, 0);
  double tau = 0.0;
  for (std::size_t s = 0; s < n; ++s)
    if (!g.deterministics(s).empty()) {
      in_set[s] = 1;
      tau = g.deterministics(s)[0].delay;
    }
  DenseMatrix q_dense(n, n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (!in_set[s]) continue;
    for (const petri::RateEdge& e : g.exponential_edges(s)) {
      q_dense(s, e.target) += e.rate;
      q_dense(s, s) -= e.rate;
    }
  }
  const auto pair = markov::matrix_exponential_pair(q_dense, tau);
  const markov::SparseUniformization uniformization(
      markov::sparse_subordinated_generator(g, in_set), tau);
  for (std::size_t s = 0; s < n; ++s) {
    if (!in_set[s]) continue;
    const auto row = uniformization.row_pair(s);
    for (std::size_t u = 0; u < n; ++u) {
      EXPECT_NEAR(row.omega[u], pair.omega(s, u), 1e-11);
      EXPECT_NEAR(row.sojourn[u], pair.integral(s, u), 1e-9 * tau);
    }
  }
}

TEST(SparseStationaryTest, CtmcSteadyStateMatchesDense) {
  const auto params = core::SystemParameters::paper_four_version();
  const auto g = paper_graph(params);
  const auto dense = markov::ctmc_steady_state(
      markov::Ctmc::from_graph(g).generator);
  const auto sparse =
      markov::ctmc_steady_state_sparse(markov::sparse_generator(g));
  ASSERT_EQ(sparse.size(), dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i)
    EXPECT_NEAR(sparse[i], dense[i], 1e-10);
}

TEST(SparseStationaryTest, DtmcStationaryMatchesDense) {
  // Random irreducible row-stochastic matrix.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  const std::size_t n = 25;
  DenseMatrix p_dense(n, n, 0.0);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    std::vector<std::pair<std::size_t, double>> entries;
    entries.emplace_back((r + 1) % n, weight(rng));  // ring keeps it live
    entries.emplace_back(std::uniform_int_distribution<std::size_t>(
                             0, n - 1)(rng),
                         weight(rng));
    for (auto& [c, w] : entries) total += w;
    for (auto& [c, w] : entries) {
      p_dense(r, c) += w / total;
      triplets.push_back({r, c, w / total});
    }
  }
  const SparseMatrixCsr p_sparse(n, n, std::move(triplets));
  const auto nu_dense = markov::dtmc_stationary(p_dense);
  const auto nu_sparse = markov::dtmc_stationary(p_sparse);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(nu_sparse[i], nu_dense[i], 1e-10);
}

// ---------------------------------------------------------------------------
// Backend equivalence on the paper configurations: both backends must agree
// on the full stationary distribution and on every reported R_{i,j,k}.

void expect_backends_agree(const core::SystemParameters& params) {
  core::ReliabilityAnalyzer::Options dense_options;
  dense_options.use_cache = false;
  dense_options.solver.backend = markov::SolverBackend::kDense;
  core::ReliabilityAnalyzer::Options sparse_options = dense_options;
  sparse_options.solver.backend = markov::SolverBackend::kSparse;

  const auto dense =
      core::ReliabilityAnalyzer(dense_options).analyze(params);
  const auto sparse =
      core::ReliabilityAnalyzer(sparse_options).analyze(params);

  EXPECT_FALSE(dense.used_sparse_backend);
  EXPECT_TRUE(sparse.used_sparse_backend);
  EXPECT_NEAR(sparse.expected_reliability, dense.expected_reliability,
              1e-10);
  ASSERT_EQ(sparse.state_distribution.size(),
            dense.state_distribution.size());
  // Distributions are sorted by probability; compare per (i, j, k) class.
  for (const auto& d : dense.state_distribution) {
    bool found = false;
    for (const auto& s : sparse.state_distribution) {
      if (s.healthy != d.healthy || s.compromised != d.compromised ||
          s.down != d.down)
        continue;
      found = true;
      EXPECT_NEAR(s.probability, d.probability, 1e-10);
      EXPECT_NEAR(s.reliability, d.reliability, 1e-10);
    }
    EXPECT_TRUE(found) << "class (" << d.healthy << "," << d.compromised
                       << "," << d.down << ") missing from sparse result";
  }
}

TEST(BackendEquivalenceTest, PaperFourVersion) {
  expect_backends_agree(core::SystemParameters::paper_four_version());
}

TEST(BackendEquivalenceTest, PaperSixVersion) {
  expect_backends_agree(core::SystemParameters::paper_six_version());
}

TEST(BackendEquivalenceTest, PaperSixVersionParameterVariants) {
  auto params = core::SystemParameters::paper_six_version();
  params.rejuvenation_interval = 1200.0;
  expect_backends_agree(params);
  params = core::SystemParameters::paper_six_version();
  params.alpha = 0.9;
  params.p = 0.2;
  expect_backends_agree(params);
  params = core::SystemParameters::paper_six_version();
  params.mean_time_to_compromise = 500.0;
  expect_backends_agree(params);
}

// Randomized DSPN property test: on arbitrary live nets (ring + chords +
// deterministic maintenance clock — the fuzz_test generator family), the two
// backends must produce the same stationary vector.
petri::PetriNet random_ring_net(std::uint64_t seed, bool with_deterministic) {
  util::RandomStream rng(seed);
  petri::PetriNet net("sparse_fuzz" + std::to_string(seed));
  const int places = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<petri::PlaceId> ring;
  for (int p = 0; p < places; ++p)
    ring.push_back(net.add_place(
        "P" + std::to_string(p),
        p == 0 ? 1 + static_cast<int>(rng.uniform_index(3)) : 0));
  for (int p = 0; p < places; ++p) {
    const auto t = net.add_exponential("ring" + std::to_string(p),
                                       rng.uniform(0.05, 2.0));
    net.add_input_arc(t, ring[static_cast<std::size_t>(p)]);
    net.add_output_arc(t, ring[static_cast<std::size_t>((p + 1) % places)]);
  }
  const int chords = static_cast<int>(rng.uniform_index(3));
  for (int c = 0; c < chords; ++c) {
    const auto from = rng.uniform_index(static_cast<std::size_t>(places));
    auto to = rng.uniform_index(static_cast<std::size_t>(places));
    if (to == from) to = (to + 1) % static_cast<std::size_t>(places);
    const auto t = net.add_exponential("chord" + std::to_string(c),
                                       rng.uniform(0.05, 1.0));
    net.add_input_arc(t, ring[from]);
    net.add_output_arc(t, ring[to]);
  }
  if (with_deterministic) {
    const auto armed = net.add_place("armed", 1);
    const auto expired = net.add_place("expired", 0);
    const auto tick = net.add_deterministic("tick", rng.uniform(1.0, 20.0));
    net.add_input_arc(tick, armed);
    net.add_output_arc(tick, expired);
    const auto fix = net.add_immediate("fix");
    net.add_input_arc(fix, expired);
    net.add_output_arc(fix, armed);
  }
  return net;
}

TEST(BackendEquivalenceTest, RandomizedNetsAgree) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const bool with_deterministic = seed % 2 == 0;
    const auto net = random_ring_net(seed, with_deterministic);
    const auto g = petri::TangibleReachabilityGraph::build(net);
    markov::DspnSteadyStateSolver::Options dense_options;
    dense_options.backend = markov::SolverBackend::kDense;
    markov::DspnSteadyStateSolver::Options sparse_options;
    sparse_options.backend = markov::SolverBackend::kSparse;
    const auto dense =
        markov::DspnSteadyStateSolver(dense_options).solve(g);
    const auto sparse =
        markov::DspnSteadyStateSolver(sparse_options).solve(g);
    ASSERT_EQ(dense.probabilities.size(), sparse.probabilities.size());
    for (std::size_t i = 0; i < dense.probabilities.size(); ++i)
      EXPECT_NEAR(sparse.probabilities[i], dense.probabilities[i], 1e-10)
          << "seed " << seed << " state " << i;
  }
}

// ---------------------------------------------------------------------------
// Dispatch, reporting, and cache identity.

TEST(BackendDispatchTest, AutoPicksDenseBelowThresholdMatrixFreeAbove) {
  const auto params = core::SystemParameters::paper_six_version();
  const auto g = paper_graph(params);  // 70 states, MRGP (rejuvenation clock)
  markov::DspnSteadyStateSolver::Options options;  // kAuto, mfree from 64
  auto result = markov::DspnSteadyStateSolver(options).solve(g);
  EXPECT_EQ(result.backend_used, markov::SolverBackend::kMatrixFree);
  options.mrgp_matrix_free_threshold = g.size() + 1;  // below threshold
  result = markov::DspnSteadyStateSolver(options).solve(g);
  EXPECT_EQ(result.backend_used, markov::SolverBackend::kDense);
  // The explicit-sparse MRGP assembly stays reachable, but only when forced:
  // its embedded chain is near-dense, so kAuto never dispatches to it.
  options.backend = markov::SolverBackend::kSparse;
  result = markov::DspnSteadyStateSolver(options).solve(g);
  EXPECT_EQ(result.backend_used, markov::SolverBackend::kSparse);
}

TEST(BackendDispatchTest, AutoUsesCtmcThresholdWithoutDeterministics) {
  auto params = core::SystemParameters::paper_six_version();
  params.rejuvenation = false;  // pure CTMC: no deterministic clock
  const auto g = paper_graph(params);
  markov::DspnSteadyStateSolver::Options options;  // kAuto
  options.sparse_threshold = g.size();      // CTMC threshold reached
  options.mrgp_sparse_threshold = 100000;   // MRGP threshold is irrelevant
  const auto result = markov::DspnSteadyStateSolver(options).solve(g);
  EXPECT_TRUE(result.pure_ctmc);
  EXPECT_EQ(result.backend_used, markov::SolverBackend::kSparse);
}

TEST(BackendDispatchTest, SparseReportsFewerStoredEntriesOnCtmcModels) {
  const auto params = core::SystemParameters::paper_four_version();
  const auto g = paper_graph(params);
  markov::DspnSteadyStateSolver::Options options;
  options.backend = markov::SolverBackend::kSparse;
  const auto sparse = markov::DspnSteadyStateSolver(options).solve(g);
  options.backend = markov::SolverBackend::kDense;
  const auto dense = markov::DspnSteadyStateSolver(options).solve(g);
  EXPECT_LT(sparse.matrix_nonzeros, dense.matrix_nonzeros);
  EXPECT_EQ(dense.matrix_nonzeros, g.size() * g.size());
}

TEST(CacheKeyTest, BackendAndThresholdChangeTheKey) {
  const auto params = core::SystemParameters::paper_six_version();
  core::ReliabilityAnalyzer::Options options;
  const auto base_key = core::analysis_cache_key(params, options);
  options.solver.backend = markov::SolverBackend::kSparse;
  EXPECT_NE(core::analysis_cache_key(params, options), base_key);
  options.solver.backend = markov::SolverBackend::kAuto;
  options.solver.sparse_threshold = 1;
  EXPECT_NE(core::analysis_cache_key(params, options), base_key);
  options.solver.sparse_threshold = 128;  // back to defaults -> same key
  EXPECT_EQ(core::analysis_cache_key(params, options), base_key);
  options.solver.mrgp_sparse_threshold = 1;
  EXPECT_NE(core::analysis_cache_key(params, options), base_key);
  options.solver.mrgp_sparse_threshold = 512;  // default restored
  EXPECT_EQ(core::analysis_cache_key(params, options), base_key);
}

}  // namespace
}  // namespace nvp
