// Tests for the nvpd service layer: wire parsing, framing, request
// parsing/coalescing identity, the deadline-scoped engine entry, and the
// server end to end over real sockets (coalescing, deadlines, backpressure,
// graceful shutdown).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/staged.hpp"
#include "src/service/client.hpp"
#include "src/service/protocol.hpp"
#include "src/service/server.hpp"
#include "src/service/wire.hpp"

namespace nvp {
namespace {

using service::wire::parse;

// ---------------------------------------------------------------------------
// Wire parser.

TEST(WireTest, ParsesScalarsAndContainers) {
  const auto value =
      parse(R"({"a": 1.5, "b": [true, null, "x"], "c": {"d": -2e3}})");
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(value->number_or("a", 0.0), 1.5);
  const auto* b = value->get("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].as_bool());
  EXPECT_TRUE(b->array[1].is_null());
  EXPECT_EQ(b->array[2].string, "x");
  const auto* c = value->get("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number_or("d", 0.0), -2000.0);
}

TEST(WireTest, ParsesStringEscapes) {
  const auto value = parse(R"({"s": "a\"b\\c\nAé"})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->string_or("s", ""), "a\"b\\c\nA\xc3\xa9");
}

TEST(WireTest, ParsesSurrogatePairs) {
  const auto value = parse(R"("😀")");  // U+1F600
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->string, "\xf0\x9f\x98\x80");
}

TEST(WireTest, RejectsMalformedInputWithPosition) {
  std::string error;
  EXPECT_FALSE(parse("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(parse("", &error).has_value());
  EXPECT_FALSE(parse("{} trailing", &error).has_value());
  EXPECT_FALSE(parse("[1, 2", &error).has_value());
  EXPECT_FALSE(parse("01", &error).has_value());
  EXPECT_FALSE(parse("nul", &error).has_value());
}

TEST(WireTest, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(WireTest, DumpRoundTripsStructure) {
  const std::string text =
      R"({"a":1.5,"b":[true,null,"x\ny"],"c":{"d":false}})";
  const auto value = parse(text);
  ASSERT_TRUE(value.has_value());
  const std::string dumped = service::wire::dump(*value);
  const auto reparsed = parse(dumped);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(service::wire::dump(*reparsed), dumped);
  EXPECT_EQ(dumped, text);
}

// ---------------------------------------------------------------------------
// Framing.

TEST(FramingTest, RoundTripsOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(service::write_frame(fds[0], "{\"x\":1}"));
  ASSERT_TRUE(service::write_frame(fds[0], ""));
  std::string payload;
  EXPECT_EQ(service::read_frame(fds[1], payload), service::FrameStatus::kOk);
  EXPECT_EQ(payload, "{\"x\":1}");
  EXPECT_EQ(service::read_frame(fds[1], payload), service::FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  ::close(fds[0]);
  EXPECT_EQ(service::read_frame(fds[1], payload),
            service::FrameStatus::kEof);
  ::close(fds[1]);
}

TEST(FramingTest, RejectsOversizedFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string framed;
  service::append_frame(framed, "abcdefgh");
  ASSERT_EQ(::write(fds[0], framed.data(), framed.size()),
            static_cast<ssize_t>(framed.size()));
  std::string payload;
  EXPECT_EQ(service::read_frame(fds[1], payload, /*max_bytes=*/4),
            service::FrameStatus::kTooLarge);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramingTest, ReportsTruncationMidHeaderAndMidPayload) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::write(fds[0], "\x00\x00", 2), 2);  // half a header
  ::close(fds[0]);
  std::string payload;
  EXPECT_EQ(service::read_frame(fds[1], payload),
            service::FrameStatus::kTruncated);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string framed;
  service::append_frame(framed, "full payload");
  ASSERT_EQ(::write(fds[0], framed.data(), framed.size() - 4),
            static_cast<ssize_t>(framed.size() - 4));
  ::close(fds[0]);
  EXPECT_EQ(service::read_frame(fds[1], payload),
            service::FrameStatus::kTruncated);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Request parsing and coalescing identity.

service::Request must_parse(const std::string& text) {
  const auto payload = parse(text);
  EXPECT_TRUE(payload.has_value());
  service::Request request;
  std::string error;
  EXPECT_TRUE(service::parse_request(*payload, &request, &error)) << error;
  return request;
}

TEST(RequestTest, ParsesAnalyzeWithOverrides) {
  const auto request = must_parse(
      R"({"id": 7, "method": "analyze", "deadline_ms": 250,
          "params": {"paper": "4v", "interval": 450.0, "alpha": 0.1},
          "options": {"solver": "sparse"}})");
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.method, service::Method::kAnalyze);
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.params.n_versions, 4);
  EXPECT_DOUBLE_EQ(request.params.rejuvenation_interval, 450.0);
  EXPECT_DOUBLE_EQ(request.params.alpha, 0.1);
  EXPECT_EQ(request.options.solver.backend, markov::SolverBackend::kSparse);
}

TEST(RequestTest, OptionsOverlaySeededDefaults) {
  // The caller (the server) seeds its own configuration; the request's
  // options object overrides only the keys it actually carries.
  service::Request request;
  request.options.solver.backend = markov::SolverBackend::kSparse;
  request.options.convention = core::RewardConvention::kGeneralized;
  std::string error;
  auto payload = parse(
      R"({"id": 1, "method": "analyze", "params": {"paper": "4v"},
          "options": {"convention": "strict"}})");
  ASSERT_TRUE(payload.has_value());
  ASSERT_TRUE(service::parse_request(*payload, &request, &error)) << error;
  EXPECT_EQ(request.options.convention, core::RewardConvention::kStrict);
  EXPECT_EQ(request.options.solver.backend, markov::SolverBackend::kSparse);

  // No options object at all: every seeded value survives.
  service::Request bare;
  bare.options.solver.backend = markov::SolverBackend::kSparse;
  bare.options.convention = core::RewardConvention::kGeneralized;
  payload = parse(R"({"id": 2, "method": "analyze",
                      "params": {"paper": "4v"}})");
  ASSERT_TRUE(payload.has_value());
  ASSERT_TRUE(service::parse_request(*payload, &bare, &error)) << error;
  EXPECT_EQ(bare.options.convention, core::RewardConvention::kGeneralized);
  EXPECT_EQ(bare.options.solver.backend, markov::SolverBackend::kSparse);

  // An explicit "auto" is an override back to the library default, not a
  // no-op key.
  payload = parse(R"({"id": 3, "method": "analyze",
                      "params": {"paper": "4v"},
                      "options": {"solver": "auto"}})");
  ASSERT_TRUE(payload.has_value());
  service::Request reset;
  reset.options.solver.backend = markov::SolverBackend::kSparse;
  ASSERT_TRUE(service::parse_request(*payload, &reset, &error)) << error;
  EXPECT_EQ(reset.options.solver.backend, markov::SolverBackend::kAuto);
}

TEST(RequestTest, RejectsBadRequests) {
  service::Request request;
  std::string error;
  const auto check_fails = [&](const std::string& text) {
    const auto payload = parse(text);
    ASSERT_TRUE(payload.has_value()) << text;
    EXPECT_FALSE(service::parse_request(*payload, &request, &error)) << text;
  };
  check_fails(R"({"id": 1, "method": "nonsense"})");
  check_fails(R"({"id": 1, "method": "analyze", "params": {"paper": "9v"}})");
  check_fails(R"({"id": 1, "method": "analyze", "params": {"n": -3}})");
  check_fails(R"({"id": 1, "method": "sweep"})");
  check_fails(
      R"({"id": 1, "method": "sweep",
          "sweep": {"param": "bogus", "from": 1, "to": 2, "points": 5}})");
  check_fails(
      R"({"id": 1, "method": "sweep",
          "sweep": {"param": "mttc", "from": 5, "to": 2, "points": 5}})");
  check_fails(
      R"({"id": 1, "method": "simulate", "simulate": {"horizon": -1}})");
  check_fails(
      R"({"id": 1, "method": "monitor", "monitor": {"schedule": "bogus"}})");
  check_fails(
      R"({"id": 1, "method": "monitor", "monitor": {"policy": "bogus"}})");
  check_fails(
      R"({"id": 1, "method": "monitor",
          "monitor": {"interval_lo": 500, "interval_hi": 100}})");
  check_fails(
      R"({"id": 1, "method": "monitor",
          "monitor": {"horizon": 1e9, "update_every": 1}})");
}

TEST(RequestTest, ParsesMonitorWithDefaultsAndOverrides) {
  const auto request = must_parse(
      R"({"id": 9, "method": "monitor", "params": {"paper": "6v"},
          "monitor": {"schedule": "ramp", "horizon": 50000,
                      "multiplier": 10, "policy": "static",
                      "update_every": 1250, "seed": 42}})");
  EXPECT_EQ(request.method, service::Method::kMonitor);
  EXPECT_EQ(request.mon_schedule, "ramp");
  EXPECT_DOUBLE_EQ(request.mon_horizon, 50000.0);
  EXPECT_DOUBLE_EQ(request.mon_multiplier, 10.0);
  EXPECT_EQ(request.mon_policy, "static");
  EXPECT_DOUBLE_EQ(request.mon_update_every, 1250.0);
  EXPECT_EQ(request.mon_seed, 42u);
  // Absent keys keep their CLI-matching defaults.
  EXPECT_DOUBLE_EQ(request.mon_period, 60000.0);
  EXPECT_DOUBLE_EQ(request.mon_interval_lo, 60.0);
  EXPECT_DOUBLE_EQ(request.mon_interval_hi, 3000.0);
  // Monitor sessions are seed-dependent stochastic work: never coalesced.
  EXPECT_EQ(service::coalesce_key(request), 0u);
}

TEST(RequestTest, CoalesceKeyTracksSolveIdentity) {
  const auto base = must_parse(
      R"({"id": 1, "method": "analyze", "params": {"paper": "4v"}})");
  const auto same = must_parse(
      R"({"id": 999, "method": "analyze", "params": {"paper": "4v"},
          "deadline_ms": 50})");
  const auto other_params = must_parse(
      R"({"id": 1, "method": "analyze",
          "params": {"paper": "4v", "interval": 451.0}})");
  // Identity ignores id and deadline (the response payload is the same);
  // it tracks everything that changes the solve.
  EXPECT_EQ(service::coalesce_key(base), service::coalesce_key(same));
  EXPECT_NE(service::coalesce_key(base),
            service::coalesce_key(other_params));

  const auto sweep_a = must_parse(
      R"({"id": 1, "method": "sweep", "params": {"paper": "4v"},
          "sweep": {"param": "mttc", "from": 500, "to": 900, "points": 5}})");
  const auto sweep_b = must_parse(
      R"({"id": 2, "method": "sweep", "params": {"paper": "4v"},
          "sweep": {"param": "mttc", "from": 500, "to": 900, "points": 6}})");
  EXPECT_NE(service::coalesce_key(sweep_a), 0u);
  EXPECT_NE(service::coalesce_key(sweep_a), service::coalesce_key(sweep_b));

  // Stochastic and trivial methods never coalesce.
  const auto simulate = must_parse(R"({"id": 1, "method": "simulate"})");
  EXPECT_EQ(service::coalesce_key(simulate), 0u);
  const auto ping = must_parse(R"({"id": 1, "method": "ping"})");
  EXPECT_EQ(service::coalesce_key(ping), 0u);
}

TEST(ClientTest, ParsesEndpoints) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(service::parse_endpoint("127.0.0.1:9000", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  EXPECT_TRUE(service::parse_endpoint("9000", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_FALSE(service::parse_endpoint("host:", &host, &port));
  EXPECT_FALSE(service::parse_endpoint("host:0", &host, &port));
  EXPECT_FALSE(service::parse_endpoint("host:70000", &host, &port));
  EXPECT_FALSE(service::parse_endpoint("", &host, &port));
}

// ---------------------------------------------------------------------------
// Deadline-scoped engine entry.

TEST(EngineDeadlineTest, ExpiredDeadlineShortCircuits) {
  const core::Engine engine;
  const auto params = core::SystemParameters::paper_four_version();
  const auto result = engine.analyze_within(
      params, std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error.category, fault::Category::kDeadlineExceeded);
  EXPECT_FALSE(result.analytic);
}

TEST(EngineDeadlineTest, GenerousDeadlineSucceedsIdentically) {
  const core::Engine engine;
  const auto params = core::SystemParameters::paper_four_version();
  const auto bounded = engine.analyze_within(
      params, std::chrono::steady_clock::now() + std::chrono::minutes(10));
  const auto unbounded = engine.analyze(params);
  ASSERT_TRUE(bounded.ok);
  ASSERT_TRUE(unbounded.ok);
  // Same staged cache identity: the deadline must not perturb the solve.
  EXPECT_EQ(bounded.analysis.expected_reliability,
            unbounded.analysis.expected_reliability);
}

// ---------------------------------------------------------------------------
// Server end to end.

class ServiceTest : public ::testing::Test {
 protected:
  /// Starts a server with a deterministic single-worker configuration and
  /// snapshots the process-global counters (tests assert on deltas).
  void start(service::Server::Options options = {}) {
    options.port = 0;
    if (options.workers == 0) options.workers = 1;
    server_ = std::make_unique<service::Server>(options);
    server_->start();
    before_ = service::service_stats();
  }

  void TearDown() override {
    if (server_) server_->shutdown();
  }

  service::Client connect() {
    service::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_->port(), &error))
        << error;
    return client;
  }

  /// Blocks until the worker has *started* executing `count` more tasks
  /// than the snapshot. Tests that race a second connection against a
  /// blocker need this: each connection has its own reader thread, so
  /// without it the racing request can be admitted (and solved) first.
  bool wait_until_executing(std::uint64_t count) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service::service_stats().executed < before_.executed + count) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  /// A solve that holds the single worker busy for a macroscopic time:
  /// a cold wide sweep (the stage caches are dropped first).
  static std::string blocker_request(std::uint64_t id) {
    core::clear_stage_caches();
    return "{\"id\":" + std::to_string(id) +
           ",\"method\":\"sweep\",\"params\":{\"paper\":\"6v\"},"
           "\"sweep\":{\"param\":\"mttc\",\"from\":500,\"to\":5000,"
           "\"points\":40}}";
  }

  std::unique_ptr<service::Server> server_;
  service::ServiceStats before_;
};

TEST_F(ServiceTest, PingAndStatsRoundTrip) {
  start();
  service::Client client = connect();
  std::string error;
  const auto pong = client.call(3, "{\"id\":3,\"method\":\"ping\"}", &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_TRUE(pong->ok);
  EXPECT_TRUE(pong->result->bool_or("pong", false));

  const auto stats =
      client.call(4, "{\"id\":4,\"method\":\"stats\"}", &error);
  ASSERT_TRUE(stats.has_value()) << error;
  ASSERT_TRUE(stats->ok);
  ASSERT_NE(stats->result->get("service"), nullptr);
  ASSERT_NE(stats->result->get("caches"), nullptr);
}

TEST_F(ServiceTest, AnalyzeMatchesLocalEngine) {
  start();
  service::Client client = connect();
  std::string error;
  const auto response = client.call(
      1,
      R"({"id":1,"method":"analyze","params":{"paper":"4v"}})", &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_TRUE(response->ok);
  const core::Engine engine;
  const auto local =
      engine.analyze(core::SystemParameters::paper_four_version());
  EXPECT_DOUBLE_EQ(response->result->number_or("expected_reliability", -1.0),
                   local.analysis.expected_reliability);
}

TEST_F(ServiceTest, PerRequestOptionsDriveTheSolve) {
  start();  // daemon default: auto backend (dense for the small 4v model)
  service::Client client = connect();
  std::string error;

  const auto forced = client.call(
      1,
      R"({"id":1,"method":"analyze","params":{"paper":"4v"},
          "options":{"solver":"sparse"}})",
      &error);
  ASSERT_TRUE(forced.has_value()) << error;
  ASSERT_TRUE(forced->ok);
  EXPECT_EQ(forced->result->string_or("backend", ""), "sparse");

  const auto defaulted = client.call(
      2, R"({"id":2,"method":"analyze","params":{"paper":"4v"}})", &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  ASSERT_TRUE(defaulted->ok);
  EXPECT_EQ(defaulted->result->string_or("backend", ""), "dense");

  // Both paths must still agree with a local engine run under the same
  // options (the sparse/dense backends are equivalence-tested elsewhere).
  const core::Engine local;
  const auto expected =
      local.analyze(core::SystemParameters::paper_four_version());
  ASSERT_TRUE(expected.ok);
  EXPECT_DOUBLE_EQ(defaulted->result->number_or("expected_reliability", -1.0),
                   expected.analysis.expected_reliability);
  EXPECT_NEAR(forced->result->number_or("expected_reliability", -1.0),
              expected.analysis.expected_reliability, 1e-8);
}

TEST_F(ServiceTest, RequestsInheritTheDaemonsConfiguredOptions) {
  service::Server::Options options;
  options.analyzer.solver.backend = markov::SolverBackend::kSparse;
  start(options);
  service::Client client = connect();
  std::string error;
  const auto response = client.call(
      1, R"({"id":1,"method":"analyze","params":{"paper":"4v"}})", &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_TRUE(response->ok);
  // No per-request options: the daemon's configured backend applies.
  EXPECT_EQ(response->result->string_or("backend", ""), "sparse");
}

TEST_F(ServiceTest, MalformedPayloadsYieldStructuredErrorsNotCrashes) {
  start();
  service::Client client = connect();
  std::string error;

  // Garbage JSON: structured invalid-model error with id 0, connection
  // stays usable (the frame boundary was intact).
  ASSERT_TRUE(client.send("this is not json"));
  auto response = client.receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_FALSE(response->ok);
  EXPECT_EQ(response->id, 0u);
  EXPECT_EQ(response->error->string_or("category", ""), "invalid-model");

  // Bad request on the same connection: still answered.
  ASSERT_TRUE(client.send("{\"id\":9,\"method\":\"bogus\"}"));
  response = client.receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->id, 9u);

  // And the connection still serves work afterwards.
  const auto pong = client.call(10, "{\"id\":10,\"method\":\"ping\"}", &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_TRUE(pong->ok);

  const auto after = service::service_stats();
  EXPECT_GE(after.protocol_errors, before_.protocol_errors + 2);
}

TEST_F(ServiceTest, OversizedFrameRejectedAndConnectionClosed) {
  service::Server::Options options;
  options.max_frame_bytes = 64;
  start(options);
  service::Client client = connect();
  std::string framed;
  service::append_frame(framed, std::string(1024, 'x'));
  ASSERT_TRUE(::send(client.fd(), framed.data(), framed.size(), 0) > 0);
  std::string error;
  const auto response = client.receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->id, 0u);
  // The stream is poisoned; the server hangs up after answering.
  EXPECT_FALSE(client.receive(&error).has_value());
}

TEST_F(ServiceTest, ConcurrentIdenticalRequestsCoalesceToOneSolve) {
  start();  // one worker
  service::Client blocker = connect();
  ASSERT_TRUE(blocker.send(blocker_request(100)));
  ASSERT_TRUE(wait_until_executing(1));

  // While the worker grinds through the cold sweep, pipeline N identical
  // analyze requests: the first becomes the queued leader, the rest attach.
  constexpr int kBurst = 32;
  service::Client client = connect();
  for (int i = 0; i < kBurst; ++i)
    ASSERT_TRUE(client.send(
        "{\"id\":" + std::to_string(200 + i) +
        ",\"method\":\"analyze\",\"params\":{\"paper\":\"4v\"}}"));

  std::string error;
  std::map<std::uint64_t, std::string> results;
  for (int i = 0; i < kBurst; ++i) {
    const auto response = client.receive(&error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_TRUE(response->ok);
    // Compare the spliced result bytes (the envelope differs by id).
    const std::size_t at = response->raw.find("\"result\"");
    ASSERT_NE(at, std::string::npos);
    results[response->id] = response->raw.substr(at);
  }
  ASSERT_EQ(results.size(), kBurst);
  for (const auto& [id, bytes] : results)
    EXPECT_EQ(bytes, results.begin()->second) << "id " << id;

  const auto blocked = blocker.receive(&error);
  ASSERT_TRUE(blocked.has_value()) << error;
  EXPECT_TRUE(blocked->ok);

  const auto after = service::service_stats();
  // Blocker + at most a handful of leader solves; the burst must have
  // overwhelmingly coalesced while the worker was busy.
  EXPECT_GE(after.coalesced, before_.coalesced + kBurst / 2);
  EXPECT_EQ((after.executed - before_.executed) +
                (after.coalesced - before_.coalesced),
            static_cast<std::uint64_t>(kBurst) + 1);
}

TEST_F(ServiceTest, ExpiredDeadlineSkipsTheSolve) {
  start();  // one worker
  service::Client blocker = connect();
  ASSERT_TRUE(blocker.send(blocker_request(100)));
  // Only once the worker is inside the blocker's solve is the deadline
  // request guaranteed to sit in the queue past its 1 ms budget.
  ASSERT_TRUE(wait_until_executing(1));

  service::Client client = connect();
  std::string error;
  const auto response = client.call(
      5,
      R"({"id":5,"method":"analyze","deadline_ms":1,
          "params":{"paper":"4v","interval":123.0}})",
      &error);
  ASSERT_TRUE(response.has_value()) << error;
  ASSERT_FALSE(response->ok);
  EXPECT_EQ(response->error->string_or("category", ""), "deadline-exceeded");

  const auto blocked = blocker.receive(&error);
  ASSERT_TRUE(blocked.has_value()) << error;
  EXPECT_TRUE(blocked->ok);
  const auto after = service::service_stats();
  EXPECT_GE(after.deadline_missed, before_.deadline_missed + 1);
}

TEST_F(ServiceTest, FullQueueRejectsWithRetryHint) {
  service::Server::Options options;
  options.queue_capacity = 1;
  start(options);  // one worker, one queue slot
  service::Client client = connect();
  ASSERT_TRUE(client.send(blocker_request(100)));
  // Give the worker a moment to dequeue the blocker (frees the slot).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Occupies the single queue slot (distinct key, so no coalescing).
  ASSERT_TRUE(client.send(
      R"({"id":101,"method":"analyze","params":{"paper":"4v"}})"));
  // Overflows the queue.
  ASSERT_TRUE(client.send(
      R"({"id":102,"method":"analyze",
          "params":{"paper":"4v","interval":777.0}})"));

  std::string error;
  std::map<std::uint64_t, service::Response> responses;
  for (int i = 0; i < 3; ++i) {
    auto response = client.receive(&error);
    ASSERT_TRUE(response.has_value()) << error;
    const std::uint64_t id = response->id;
    responses.emplace(id, std::move(*response));
  }
  EXPECT_TRUE(responses.at(100).ok);
  EXPECT_TRUE(responses.at(101).ok);
  const auto& rejected = responses.at(102);
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error->string_or("category", ""), "resource");
  EXPECT_GT(rejected.error->number_or("retry_after_ms", 0.0), 0.0);
  const auto after = service::service_stats();
  EXPECT_GE(after.rejected, before_.rejected + 1);
}

TEST_F(ServiceTest, GracefulShutdownDeliversInFlightResponses) {
  start();  // one worker
  service::Client client = connect();
  ASSERT_TRUE(client.send(blocker_request(100)));
  // Ensure the request was admitted before shutting down.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server_->shutdown();
  EXPECT_TRUE(server_->stopped());

  // The in-flight solve's response was flushed before the socket closed.
  std::string error;
  const auto response = client.receive(&error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response->id, 100u);
  EXPECT_TRUE(response->ok);
}

TEST_F(ServiceTest, ProtocolShutdownRequestUnblocksWait) {
  start();
  service::Client client = connect();
  std::string error;
  const auto response =
      client.call(1, "{\"id\":1,\"method\":\"shutdown\"}", &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_TRUE(response->ok);
  EXPECT_TRUE(response->result->bool_or("shutting_down", false));
  server_->wait();  // must return promptly
  EXPECT_TRUE(server_->shutdown_requested());
  server_->shutdown();
  EXPECT_TRUE(server_->stopped());
}

}  // namespace
}  // namespace nvp
