// Heterogeneous (module-group) architecture family: homogeneous configs
// must stay bit-identical to the pre-refactor scalar core (golden values
// captured before the module-group refactor landed), single-group spellings
// must fold to the same cache identity, and genuinely heterogeneous
// configurations — per-group rates, weighted voting, imperfect repair —
// must agree between the analytic DSPN solution, the DSPN simulator, and
// the Monte-Carlo perception system.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/analyzer.hpp"
#include "src/core/artifact_codec.hpp"
#include "src/core/engine.hpp"
#include "src/core/params.hpp"
#include "src/core/reliability.hpp"
#include "src/core/staged.hpp"
#include "src/core/voting.hpp"
#include "src/perception/system.hpp"
#include "src/util/contracts.hpp"

namespace {

using namespace nvp;
using core::ModuleGroup;
using core::RewardAttachment;
using core::RewardConvention;
using core::SystemParameters;
using core::Verdict;
using core::VotingScheme;

ModuleGroup group_of(const SystemParameters& params, int count) {
  ModuleGroup g;
  g.count = count;
  g.mean_time_to_compromise = params.mean_time_to_compromise;
  g.mean_time_to_failure = params.mean_time_to_failure;
  g.mean_time_to_repair = params.mean_time_to_repair;
  g.p = params.p;
  g.p_prime = params.p_prime;
  return g;
}

core::AnalysisResult analyze(const SystemParameters& params,
                             RewardConvention convention,
                             RewardAttachment attachment) {
  core::ReliabilityAnalyzer::Options options;
  options.convention = convention;
  options.attachment = attachment;
  return core::ReliabilityAnalyzer(options).analyze(params);
}

// ---- golden regression ------------------------------------------------------

// E[R_sys] of the two paper configurations for every convention/attachment
// pair, captured (%.17g) on the pre-refactor scalar core. EXPECT_EQ on
// doubles: the refactored pipeline must reproduce these to the last bit.
TEST(HeterogeneousGolden, HomogeneousPipelineIsBitIdenticalToPreRefactor) {
  struct Golden {
    bool six;
    RewardConvention convention;
    RewardAttachment attachment;
    double value;
    std::size_t states;
  };
  const std::vector<Golden> golden = {
      {false, RewardConvention::kPaperVerbatim,
       RewardAttachment::kOperationalStatesOnly, 0.82145621238843192, 15},
      {false, RewardConvention::kPaperVerbatim,
       RewardAttachment::kAppendixMatrices, 0.82234868400008676, 15},
      {false, RewardConvention::kGeneralized,
       RewardAttachment::kOperationalStatesOnly, 0.78833044975196764, 15},
      {false, RewardConvention::kGeneralized,
       RewardAttachment::kAppendixMatrices, 0.78922292136362227, 15},
      {false, RewardConvention::kStrict,
       RewardAttachment::kOperationalStatesOnly, 0.45909670205435771, 15},
      {false, RewardConvention::kStrict,
       RewardAttachment::kAppendixMatrices, 0.45933476342748425, 15},
      {true, RewardConvention::kPaperVerbatim,
       RewardAttachment::kOperationalStatesOnly, 0.93748059231454994, 70},
      {true, RewardConvention::kPaperVerbatim,
       RewardAttachment::kAppendixMatrices, 0.94300906083635205, 70},
      {true, RewardConvention::kGeneralized,
       RewardAttachment::kOperationalStatesOnly, 0.93466923828062154, 70},
      {true, RewardConvention::kGeneralized,
       RewardAttachment::kAppendixMatrices, 0.94019630086076944, 70},
      {true, RewardConvention::kStrict,
       RewardAttachment::kOperationalStatesOnly, 0.8593293494488925, 70},
      {true, RewardConvention::kStrict,
       RewardAttachment::kAppendixMatrices, 0.86367461096889864, 70},
  };
  for (const Golden& g : golden) {
    const SystemParameters params =
        g.six ? SystemParameters::paper_six_version()
              : SystemParameters::paper_four_version();
    const auto analysis = analyze(params, g.convention, g.attachment);
    EXPECT_EQ(analysis.expected_reliability, g.value)
        << (g.six ? "6v" : "4v") << " convention="
        << static_cast<int>(g.convention)
        << " attachment=" << static_cast<int>(g.attachment);
    EXPECT_EQ(analysis.tangible_states, g.states);
  }
}

// ---- canonicalization: one scalar identity per homogeneous config -----------

TEST(HeterogeneousCanonical, SingleUniformGroupFoldsToScalarIdentity) {
  const SystemParameters scalar = SystemParameters::paper_six_version();
  SystemParameters grouped = scalar;
  grouped.groups = {group_of(scalar, scalar.n_versions)};
  EXPECT_FALSE(grouped.heterogeneous());
  EXPECT_TRUE(grouped.canonicalized().groups.empty());

  EXPECT_EQ(core::structure_stage_key(grouped),
            core::structure_stage_key(scalar));
  const markov::DspnSteadyStateSolver::Options solver;
  EXPECT_EQ(core::rates_stage_key(grouped, solver),
            core::rates_stage_key(scalar, solver));
  EXPECT_EQ(core::reward_table_stage_key(grouped,
                                         RewardConvention::kGeneralized),
            core::reward_table_stage_key(scalar,
                                         RewardConvention::kGeneralized));
  const core::ReliabilityAnalyzer::Options options;
  EXPECT_EQ(core::rewards_stage_key(grouped, options),
            core::rewards_stage_key(scalar, options));

  // And the analysis itself is the same scalar code path: 0 ulp apart.
  const auto a = analyze(scalar, RewardConvention::kGeneralized,
                         RewardAttachment::kAppendixMatrices);
  const auto b = analyze(grouped, RewardConvention::kGeneralized,
                         RewardAttachment::kAppendixMatrices);
  EXPECT_EQ(a.expected_reliability, b.expected_reliability);
  EXPECT_EQ(a.tangible_states, b.tangible_states);
}

TEST(HeterogeneousCanonical, SingleGroupWeightIsInertAndFolds) {
  // A uniform weight rescales quota and masses together, so a single
  // weighted group is still the scalar system.
  const SystemParameters scalar = SystemParameters::paper_four_version();
  SystemParameters grouped = scalar;
  ModuleGroup g = group_of(scalar, scalar.n_versions);
  g.weight = 3.0;
  grouped.groups = {g};
  EXPECT_FALSE(grouped.heterogeneous());
  EXPECT_EQ(core::structure_stage_key(grouped),
            core::structure_stage_key(scalar));
}

TEST(HeterogeneousCanonical, ImperfectRepairAndMultiGroupDoNotFold) {
  const SystemParameters scalar = SystemParameters::paper_four_version();
  SystemParameters degraded = scalar;
  ModuleGroup g = group_of(scalar, scalar.n_versions);
  g.repair_degradation = 0.2;
  degraded.groups = {g};
  EXPECT_TRUE(degraded.heterogeneous());
  EXPECT_NE(core::structure_stage_key(degraded),
            core::structure_stage_key(scalar));

  SystemParameters split = scalar;
  split.groups = {group_of(scalar, 2), group_of(scalar, 2)};
  EXPECT_TRUE(split.heterogeneous());
  EXPECT_NE(core::structure_stage_key(split),
            core::structure_stage_key(scalar));
}

TEST(HeterogeneousCanonical, GroupCountsMustSumToN) {
  SystemParameters params = SystemParameters::paper_four_version();
  params.groups = {group_of(params, 3)};
  EXPECT_THROW(params.validate(), util::ContractViolation);
}

// ---- weighted voting scheme -------------------------------------------------

TEST(WeightedVoting, UnitWeightsReproduceCountingDecisions) {
  const VotingScheme counting = VotingScheme::bft_rejuvenating(6, 1, 1);
  const VotingScheme weighted = VotingScheme::weighted(
      {1.0, 1.0}, static_cast<double>(counting.threshold()));
  for (int correct = 0; correct <= 6; ++correct)
    for (int wrong = 0; correct + wrong <= 6; ++wrong) {
      const int silent = 6 - correct - wrong;
      // Split the tallies across the two unit-weight groups.
      std::vector<VotingScheme::GroupTally> tallies(2);
      tallies[0] = {correct / 2, wrong / 2, silent / 2};
      tallies[1] = {correct - correct / 2, wrong - wrong / 2,
                    silent - silent / 2};
      EXPECT_EQ(weighted.decide(tallies),
                counting.decide(correct, wrong, silent))
          << correct << "/" << wrong << "/" << silent;
    }
}

TEST(WeightedVoting, MassRulesDecideAgainstTheQuota) {
  // Groups of weight 1.5 / 1 / 1 with quota 4 over 1+2+2 modules.
  const VotingScheme scheme = VotingScheme::weighted({1.5, 1.0, 1.0}, 4.0);
  using T = VotingScheme::GroupTally;
  // All five respond correctly: mass 5.5 >= 4.
  EXPECT_EQ(scheme.decide({T{1, 0, 0}, T{2, 0, 0}, T{2, 0, 0}}),
            Verdict::kCorrect);
  // Both unit groups wrong as blocs: wrong mass 4 reaches the quota.
  EXPECT_EQ(scheme.decide({T{1, 0, 0}, T{0, 2, 0}, T{0, 2, 0}}),
            Verdict::kError);
  // Heavy + one unit group wrong: 3.5 < 4 but correct mass 2 < 4 too.
  EXPECT_EQ(scheme.decide({T{0, 1, 0}, T{0, 2, 0}, T{2, 0, 0}}),
            Verdict::kInconclusive);
  // One unit group fully silent: responding mass 3.5 can never reach 4.
  EXPECT_EQ(scheme.decide({T{1, 0, 0}, T{2, 0, 0}, T{0, 0, 2}}),
            Verdict::kUnavailable);
}

// ---- group reward model -----------------------------------------------------

TEST(GroupRewards, SingleGroupMatchesGeneralizedReliability) {
  const SystemParameters params = SystemParameters::paper_six_version();
  const auto grouped = core::make_group_reliability_model(
      params, RewardConvention::kGeneralized);
  const core::GeneralizedReliability legacy(
      params.n_versions,
      VotingScheme::bft_rejuvenating(params.n_versions, params.max_faulty,
                                     params.max_rejuvenating),
      params.p, params.p_prime, params.alpha);
  for (int i = 0; i <= params.n_versions; ++i)
    for (int j = 0; i + j <= params.n_versions; ++j) {
      const int k = params.n_versions - i - j;
      EXPECT_DOUBLE_EQ(grouped->state_reliability({{i, j, k}}),
                       legacy.state_reliability(i, j, k))
          << "(" << i << "," << j << "," << k << ")";
    }
}

TEST(GroupRewards, ThreeGroupHandOracle) {
  // 1 + 2 + 2 modules, weights 1.5 / 1 / 1, f = 1, no rejuvenation:
  // W_f = 1.5, w_min = 1 => quota Q = 2*1.5 + 1 = 4, total mass 5.5
  // (feasible: 5.5 >= 3*1.5 + 1). alpha = 1 makes each group's healthy
  // modules err as one bloc with probability p_g, so every reward below is
  // a few-term hand computation.
  SystemParameters params;
  params.n_versions = 5;
  params.max_faulty = 1;
  params.max_rejuvenating = 1;
  params.rejuvenation = false;
  params.alpha = 1.0;
  ModuleGroup a = group_of(params, 1);
  a.p = 0.1;
  a.weight = 1.5;
  ModuleGroup b = group_of(params, 2);
  b.p = 0.2;
  b.p_prime = 0.5;
  ModuleGroup c = group_of(params, 2);
  c.p = 0.3;
  params.groups = {a, b, c};
  params.validate();
  EXPECT_DOUBLE_EQ(params.weighted_quota(), 4.0);

  const auto model = core::make_group_reliability_model(
      params, RewardConvention::kGeneralized);
  // All healthy: an error needs wrong mass >= 4, which only the two unit
  // blocs together (mass 4) or all three groups reach, so
  // P(error) = p_b * p_c = 0.06.
  EXPECT_NEAR(model->state_reliability({{1, 0, 0}, {2, 0, 0}, {2, 0, 0}}),
              1.0 - 0.2 * 0.3, 1e-12);
  // Group b has one compromised and one down module: responding mass 4.5.
  // Wrong mass reaches 4 only when all of a (1.5), b's compromised module
  // (1, errs with p' = 0.5), and c's bloc (2) err together.
  EXPECT_NEAR(model->state_reliability({{1, 0, 0}, {0, 1, 1}, {2, 0, 0}}),
              1.0 - 0.1 * 0.5 * 0.3, 1e-12);
  // Group b fully down: responding mass 3.5 < 4, the voter can never
  // decide — reward 0.
  EXPECT_EQ(model->state_reliability({{1, 0, 0}, {0, 0, 2}, {2, 0, 0}}),
            0.0);

  // Strict convention: a correct verdict needs correct mass >= 4, i.e.
  // both unit blocs correct; group a alone cannot tip the balance.
  const auto strict = core::make_group_reliability_model(
      params, RewardConvention::kStrict);
  EXPECT_NEAR(strict->state_reliability({{1, 0, 0}, {2, 0, 0}, {2, 0, 0}}),
              (1.0 - 0.2) * (1.0 - 0.3), 1e-12);
}

// ---- staged pipeline + codec over heterogeneous structures ------------------

TEST(HeterogeneousStaged, StructureArtifactRoundTripsThroughCodec) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup slow = group_of(params, 2);
  slow.mean_time_to_compromise *= 4.0;
  params.groups = {group_of(params, 4), slow};
  params.validate();

  const auto structure = core::staged_structure(params, /*use_cache=*/false);
  ASSERT_FALSE(structure->group_classes.empty());
  EXPECT_EQ(structure->group_classes.size(), structure->classes.size());

  const auto bytes = core::encode_structure_artifact(*structure);
  const auto decoded =
      core::decode_structure_artifact(bytes.data(), bytes.size(), params);
  EXPECT_EQ(decoded->classes, structure->classes);
  EXPECT_EQ(decoded->group_classes, structure->group_classes);
  EXPECT_EQ(decoded->class_of_state, structure->class_of_state);
  ASSERT_EQ(decoded->state_class.size(), structure->state_class.size());
  for (std::size_t i = 0; i < structure->state_class.size(); ++i)
    EXPECT_EQ(decoded->state_class[i].groups,
              structure->state_class[i].groups);
}

TEST(HeterogeneousStaged, RepeatAnalysisHitsTheWholeResultCache) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup heavy = group_of(params, 5);
  heavy.weight = 2.0;
  heavy.repair_degradation = 0.1;
  params.groups = {group_of(params, 1), heavy};
  params.validate();

  core::ReliabilityAnalyzer::Options options;
  options.convention = RewardConvention::kGeneralized;
  const core::ReliabilityAnalyzer analyzer(options);
  const auto cold = analyzer.analyze(params);
  const auto before = core::stage_cache_stats().whole_result;
  const auto warm = analyzer.analyze(params);
  const auto after = core::stage_cache_stats().whole_result;
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(cold.expected_reliability, warm.expected_reliability);
}

// ---- analytic vs simulator cross-checks -------------------------------------

TEST(HeterogeneousCrossCheck, DspnSimulatorTracksAnalyticTwoGroupSplit) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup slow = group_of(params, 2);
  slow.mean_time_to_compromise *= 4.0;
  params.groups = {group_of(params, 4), slow};
  params.validate();

  core::ReliabilityAnalyzer::Options options;
  options.convention = RewardConvention::kGeneralized;
  options.attachment = RewardAttachment::kAppendixMatrices;
  const core::Engine engine(options);
  const double analytic = engine.analyze_raw(params).expected_reliability;

  core::Engine::SimulateOptions sim;
  sim.horizon = 2e4;
  sim.replications = 4;
  sim.seed = 11;
  const auto simulated = engine.simulate(params, sim);
  ASSERT_TRUE(simulated.ok);
  EXPECT_NEAR(simulated.estimate.mean, analytic, 0.05);
}

TEST(HeterogeneousCrossCheck,
     DspnSimulatorTracksAnalyticWeightedImperfectRepair) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup heavy = group_of(params, 5);
  heavy.mean_time_to_compromise *= 4.0;
  heavy.weight = 2.0;
  heavy.repair_degradation = 0.1;
  params.groups = {group_of(params, 1), heavy};
  params.validate();

  core::ReliabilityAnalyzer::Options options;
  options.convention = RewardConvention::kGeneralized;
  options.attachment = RewardAttachment::kAppendixMatrices;
  const core::Engine engine(options);
  const double analytic = engine.analyze_raw(params).expected_reliability;

  core::Engine::SimulateOptions sim;
  sim.horizon = 2e4;
  sim.replications = 4;
  sim.seed = 13;
  const auto simulated = engine.simulate(params, sim);
  ASSERT_TRUE(simulated.ok);
  EXPECT_NEAR(simulated.estimate.mean, analytic, 0.05);
}

TEST(HeterogeneousCrossCheck, PerceptionCampaignTracksAnalyticTwoGroups) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup slow = group_of(params, 2);
  slow.mean_time_to_compromise *= 4.0;
  params.groups = {group_of(params, 4), slow};
  params.validate();

  const double analytic =
      analyze(params, RewardConvention::kGeneralized,
              RewardAttachment::kAppendixMatrices)
          .expected_reliability;

  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = params;
  cfg.seed = 41;
  cfg.frame_interval = 2.0;
  perception::NVersionPerceptionSystem system(cfg);
  const auto result = system.run(8e5);
  EXPECT_NEAR(result.paper_reliability(), analytic, 0.05);
}

TEST(HeterogeneousCrossCheck,
     PerceptionCampaignTracksAnalyticWeightedImperfectRepair) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup heavy = group_of(params, 5);
  heavy.mean_time_to_compromise *= 4.0;
  heavy.weight = 2.0;
  heavy.repair_degradation = 0.1;
  params.groups = {group_of(params, 1), heavy};
  params.validate();

  const double analytic =
      analyze(params, RewardConvention::kGeneralized,
              RewardAttachment::kAppendixMatrices)
          .expected_reliability;

  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = params;
  cfg.seed = 43;
  cfg.frame_interval = 2.0;
  perception::NVersionPerceptionSystem system(cfg);
  const auto result = system.run(8e5);
  EXPECT_NEAR(result.paper_reliability(), analytic, 0.05);
}

// ---- heterogeneous perception guard rails -----------------------------------

TEST(HeterogeneousPerception, AttackWindowsAndPluralityAreRejected) {
  SystemParameters params = SystemParameters::paper_six_version();
  ModuleGroup slow = group_of(params, 2);
  slow.mean_time_to_compromise *= 4.0;
  params.groups = {group_of(params, 4), slow};

  perception::NVersionPerceptionSystem::Config cfg;
  cfg.params = params;
  perception::NVersionPerceptionSystem system(cfg);
  EXPECT_THROW(system.add_attack_window({0.0, 1e3, 10.0}),
               util::ContractViolation);

  cfg.plurality_voter = true;
  EXPECT_THROW(perception::NVersionPerceptionSystem{cfg},
               util::ContractViolation);
}

}  // namespace
