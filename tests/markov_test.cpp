#include <gtest/gtest.h>

#include <cmath>

#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/markov/dtmc.hpp"
#include "src/markov/rewards.hpp"
#include "src/markov/transient.hpp"
#include "src/petri/reachability.hpp"

namespace nvp::markov {
namespace {

using linalg::DenseMatrix;
using linalg::Vector;
using petri::PetriNet;
using petri::TangibleReachabilityGraph;

/// Two-state repairable system: up --(rate f)--> down --(rate r)--> up.
DenseMatrix two_state_generator(double fail, double repair) {
  DenseMatrix q(2, 2, 0.0);
  q(0, 0) = -fail;
  q(0, 1) = fail;
  q(1, 0) = repair;
  q(1, 1) = -repair;
  return q;
}

/// M/M/1/K queue net with arrival rate a and service rate s.
PetriNet mm1k(double a, double s, petri::TokenCount k) {
  PetriNet net("mm1k");
  const auto queue = net.add_place("q", 0);
  const auto arrive = net.add_exponential("arrive", a);
  net.add_output_arc(arrive, queue);
  net.add_inhibitor_arc(arrive, queue, k);
  const auto serve = net.add_exponential("serve", s);
  net.add_input_arc(serve, queue);
  return net;
}

// ---- CTMC steady state ----------------------------------------------------

TEST(CtmcSteadyState, TwoStateClosedForm) {
  // pi_up = r / (f + r).
  const auto q = two_state_generator(0.2, 0.8);
  for (auto method :
       {SteadyStateMethod::kDirect, SteadyStateMethod::kGaussSeidel,
        SteadyStateMethod::kPowerIteration}) {
    const auto pi = ctmc_steady_state(q, method);
    EXPECT_NEAR(pi[0], 0.8, 1e-8);
    EXPECT_NEAR(pi[1], 0.2, 1e-8);
  }
}

TEST(CtmcSteadyState, Mm1kMatchesClosedForm) {
  const double a = 1.0, s = 2.0;
  const int k = 6;
  const auto g = TangibleReachabilityGraph::build(mm1k(a, s, k));
  const auto chain = Ctmc::from_graph(g);
  const auto pi = ctmc_steady_state(chain.generator);
  // pi_n = rho^n (1-rho) / (1-rho^{K+1}) with rho = 1/2.
  const double rho = a / s;
  const double denom = 1.0 - std::pow(rho, k + 1);
  for (int n = 0; n <= k; ++n) {
    const auto idx = g.find({n});
    ASSERT_TRUE(idx.has_value());
    EXPECT_NEAR(pi[*idx], std::pow(rho, n) * (1.0 - rho) / denom, 1e-9)
        << "n = " << n;
  }
}

TEST(CtmcSteadyState, BirthDeathDetailedBalance) {
  // Birth-death chain of 5 states with arbitrary rates; verify pi satisfies
  // detailed balance pi_i b_i = pi_{i+1} d_{i+1}.
  const double births[] = {1.0, 2.0, 0.5, 1.5};
  const double deaths[] = {0.7, 1.1, 2.2, 0.4};
  DenseMatrix q(5, 5, 0.0);
  for (int i = 0; i < 4; ++i) {
    q(i, i + 1) += births[i];
    q(i, i) -= births[i];
    q(i + 1, i) += deaths[i];
    q(i + 1, i + 1) -= deaths[i];
  }
  const auto pi = ctmc_steady_state(q);
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(pi[i] * births[i], pi[i + 1] * deaths[i], 1e-10);
}

TEST(CtmcSteadyState, FromGraphRejectsDeterministic) {
  PetriNet net;
  const auto p = net.add_place("P", 1);
  const auto d = net.add_deterministic("D", 1.0);
  net.add_input_arc(d, p);
  net.add_output_arc(d, p);
  const auto g = TangibleReachabilityGraph::build(net);
  EXPECT_THROW(Ctmc::from_graph(g), SolverError);
}

// ---- transient / matrix exponentials ----------------------------------------

TEST(Transient, TwoStateClosedFormOverTime) {
  const double f = 0.3, r = 0.7;
  const auto q = two_state_generator(f, r);
  const Vector pi0 = {1.0, 0.0};
  for (double t : {0.0, 0.1, 1.0, 5.0, 50.0}) {
    const auto pi = ctmc_transient(q, pi0, t);
    const double expected_up =
        r / (f + r) + f / (f + r) * std::exp(-(f + r) * t);
    EXPECT_NEAR(pi[0], expected_up, 1e-10) << "t = " << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-10);
  }
}

TEST(Transient, MatrixPairMatchesVectorPropagation) {
  const auto q = two_state_generator(0.4, 0.9);
  const double tau = 3.7;
  const auto pair = matrix_exponential_pair(q, tau);
  const Vector pi0 = {0.25, 0.75};
  const auto direct = ctmc_transient(q, pi0, tau);
  const auto via_matrix = pair.omega.left_multiply(pi0);
  EXPECT_NEAR(via_matrix[0], direct[0], 1e-9);
  EXPECT_NEAR(via_matrix[1], direct[1], 1e-9);
}

TEST(Transient, IntegralMatchesAccumulatedSojourn) {
  const auto q = two_state_generator(0.4, 0.9);
  const double tau = 2.5;
  const auto pair = matrix_exponential_pair(q, tau);
  const Vector pi0 = {1.0, 0.0};
  const auto acc = ctmc_accumulated_sojourn(q, pi0, tau);
  const auto via_matrix = pair.integral.left_multiply(pi0);
  EXPECT_NEAR(via_matrix[0], acc[0], 1e-8);
  EXPECT_NEAR(via_matrix[1], acc[1], 1e-8);
  // Total accumulated time equals tau.
  EXPECT_NEAR(acc[0] + acc[1], tau, 1e-9);
}

TEST(Transient, LongHorizonApproachesSteadyState) {
  const auto q = two_state_generator(0.05, 0.2);
  const Vector pi0 = {0.0, 1.0};
  const auto pi = ctmc_transient(q, pi0, 1e4);
  EXPECT_NEAR(pi[0], 0.8, 1e-8);
}

TEST(Transient, StiffHorizonStaysStochastic) {
  // Large rates x long horizon exercises the doubling path.
  const auto q = two_state_generator(120.0, 80.0);
  const auto pair = matrix_exponential_pair(q, 100.0);
  for (std::size_t i = 0; i < 2; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GE(pair.omega(i, j), -1e-12);
      row += pair.omega(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(Transient, ZeroGenerator) {
  DenseMatrix q(3, 3, 0.0);
  const auto pair = matrix_exponential_pair(q, 7.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(pair.omega(i, i), 1.0);
    EXPECT_DOUBLE_EQ(pair.integral(i, i), 7.0);
  }
}

// ---- DTMC ----------------------------------------------------------------------

TEST(Dtmc, StationaryOfKnownChain) {
  DenseMatrix p(3, 3, 0.0);
  p(0, 1) = 1.0;
  p(1, 0) = 0.4;
  p(1, 2) = 0.6;
  p(2, 0) = 1.0;
  const auto nu = dtmc_stationary(p);
  // Balance: nu0 = 0.4 nu1 + nu2; nu1 = nu0; nu2 = 0.6 nu1.
  EXPECT_NEAR(nu[0], nu[1], 1e-10);
  EXPECT_NEAR(nu[2], 0.6 * nu[1], 1e-10);
  EXPECT_NEAR(nu[0] + nu[1] + nu[2], 1.0, 1e-12);
}

TEST(Dtmc, RowSumCheck) {
  DenseMatrix p(2, 2, 0.0);
  p(0, 0) = 0.5;
  p(0, 1) = 0.5;
  p(1, 0) = 0.9;
  p(1, 1) = 0.2;  // bad row
  EXPECT_NEAR(max_row_sum_error(p), 0.1, 1e-12);
}

// ---- DSPN solver -----------------------------------------------------------------

/// A deterministic transition D (delay tau) cycles a token A -> B; an
/// exponential transition returns it. Always exactly one deterministic
/// enabled in state A, none in B. Closed form: the cycle alternates a
/// deterministic phase of exactly tau with an exponential phase of mean
/// 1/r, so pi_A = tau / (tau + 1/r).
TEST(DspnSolver, DeterministicExponentialCycle) {
  const double tau = 5.0, r = 0.4;
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto d = net.add_deterministic("D", tau);
  net.add_input_arc(d, a);
  net.add_output_arc(d, b);
  const auto back = net.add_exponential("back", r);
  net.add_input_arc(back, b);
  net.add_output_arc(back, a);

  const auto g = TangibleReachabilityGraph::build(net);
  const auto result = DspnSteadyStateSolver().solve(g);
  EXPECT_FALSE(result.pure_ctmc);
  const auto sa = g.find({1, 0});
  const auto sb = g.find({0, 1});
  ASSERT_TRUE(sa && sb);
  const double expected_a = tau / (tau + 1.0 / r);
  EXPECT_NEAR(result.probabilities[*sa], expected_a, 1e-9);
  EXPECT_NEAR(result.probabilities[*sb], 1.0 - expected_a, 1e-9);
}

/// M/D/1/K-style queue: deterministic service, Poisson arrivals. Validated
/// against an Erlang-stage approximation of the deterministic service time
/// (k stages with rate k/tau each) — the Erlang chain converges to the DSPN
/// solution as k grows.
TEST(DspnSolver, MD1KAgreesWithErlangApproximation) {
  const double lambda = 0.08;
  const double tau = 5.0;
  const int cap = 4;

  // DSPN: arrivals bounded at cap; service deterministic tau, enabled while
  // queue non-empty (enabling memory restarts per departure since the
  // marking change disables/re-enables... the transition stays enabled when
  // queue > 1; this models a server that keeps its timer — the standard
  // M/D/1 queue).
  PetriNet net;
  const auto q = net.add_place("q", 0);
  const auto arrive = net.add_exponential("arrive", lambda);
  net.add_output_arc(arrive, q);
  net.add_inhibitor_arc(arrive, q, cap);
  const auto serve = net.add_deterministic("serve", tau);
  net.add_input_arc(serve, q);
  const auto g = TangibleReachabilityGraph::build(net);
  const auto dspn = DspnSteadyStateSolver().solve(g);

  // Erlang approximation with many stages.
  const int stages = 200;
  PetriNet erlang_net;
  const auto eq = erlang_net.add_place("q", 0);
  const auto stage = erlang_net.add_place("stage", 0);
  const auto earr = erlang_net.add_exponential("arrive", lambda);
  erlang_net.add_output_arc(earr, eq);
  erlang_net.add_inhibitor_arc(earr, eq, cap);
  // Stage progression: while q > 0, a stage token advances; after `stages`
  // advances one customer departs. Encode stage count in a counter place.
  const auto advance = erlang_net.add_exponential(
      "advance", static_cast<double>(stages) / tau);
  erlang_net.set_guard(advance, [eq](const petri::Marking& m) {
    return m[eq.index] >= 1;
  });
  erlang_net.add_output_arc(advance, stage);
  const auto depart = erlang_net.add_immediate("depart");
  erlang_net.add_input_arc(depart, stage, stages);
  erlang_net.add_input_arc(depart, eq);
  const auto ge = TangibleReachabilityGraph::build(erlang_net);
  const auto ctmc = Ctmc::from_graph(ge);
  const auto pi_e = ctmc_steady_state(ctmc.generator);

  // Compare queue-length marginals.
  for (int n = 0; n <= cap; ++n) {
    double dspn_mass = 0.0;
    for (std::size_t s = 0; s < g.size(); ++s)
      if (g.marking(s)[q.index] == n) dspn_mass += dspn.probabilities[s];
    double erlang_mass = 0.0;
    for (std::size_t s = 0; s < ge.size(); ++s)
      if (ge.marking(s)[eq.index] == n) erlang_mass += pi_e[s];
    EXPECT_NEAR(dspn_mass, erlang_mass, 0.01) << "queue length " << n;
  }
}

TEST(DspnSolver, PureCtmcFallsThrough) {
  const auto g = TangibleReachabilityGraph::build(mm1k(1.0, 2.0, 3));
  const auto result = DspnSteadyStateSolver().solve(g);
  EXPECT_TRUE(result.pure_ctmc);
  const auto direct = ctmc_steady_state(Ctmc::from_graph(g).generator);
  for (std::size_t s = 0; s < g.size(); ++s)
    EXPECT_NEAR(result.probabilities[s], direct[s], 1e-10);
}

TEST(DspnSolver, RejectsTwoConcurrentDeterministics) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 1);
  const auto d1 = net.add_deterministic("D1", 1.0);
  net.add_input_arc(d1, a);
  net.add_output_arc(d1, a);
  const auto d2 = net.add_deterministic("D2", 2.0);
  net.add_input_arc(d2, b);
  net.add_output_arc(d2, b);
  const auto g = TangibleReachabilityGraph::build(net);
  EXPECT_THROW(DspnSteadyStateSolver().solve(g), SolverError);
}

TEST(DspnSolver, RejectsAbsorbingStateInMrgpPath) {
  // Deterministic A -> B with B dead: the regenerative analysis has no
  // stationary distribution to offer.
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto d = net.add_deterministic("D", 2.0);
  net.add_input_arc(d, a);
  net.add_output_arc(d, b);  // B is absorbing
  const auto g = TangibleReachabilityGraph::build(net);
  EXPECT_THROW(DspnSteadyStateSolver().solve(g), SolverError);
}

TEST(DspnSolver, PureCtmcAbsorbingChainConvergesToAbsorber) {
  // Without deterministic transitions the solver delegates to the CTMC
  // path, where an absorbing chain has the degenerate stationary
  // distribution concentrated on the absorber.
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("T", 1.0);
  net.add_input_arc(t, a);
  net.add_output_arc(t, b);
  const auto g = TangibleReachabilityGraph::build(net);
  const auto result = DspnSteadyStateSolver().solve(g);
  const auto sb = g.find({0, 1});
  ASSERT_TRUE(sb.has_value());
  EXPECT_NEAR(result.probabilities[*sb], 1.0, 1e-9);
}

TEST(DspnSolver, DeterministicDisabledByCompetition) {
  // Deterministic D (delay 10) competes with a fast exponential E (rate 2)
  // for the same token; E almost always wins, and each E-firing resets D's
  // timer (regeneration on disabling). State A should dominate but both
  // solver and closed form agree: from A, P(D fires first) = exp(-2*10).
  const double tau = 10.0, e_rate = 2.0, back_rate = 0.5;
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto c = net.add_place("C", 0);
  const auto d = net.add_deterministic("D", tau);
  net.add_input_arc(d, a);
  net.add_output_arc(d, b);
  const auto e = net.add_exponential("E", e_rate);
  net.add_input_arc(e, a);
  net.add_output_arc(e, c);
  const auto back_b = net.add_exponential("backB", back_rate);
  net.add_input_arc(back_b, b);
  net.add_output_arc(back_b, a);
  const auto back_c = net.add_exponential("backC", back_rate);
  net.add_input_arc(back_c, c);
  net.add_output_arc(back_c, a);

  const auto g = TangibleReachabilityGraph::build(net);
  const auto result = DspnSteadyStateSolver().solve(g);

  // Semi-Markov closed form: from A, the sojourn is min(Exp(e), tau);
  // P(to B) = exp(-e_rate * tau); expected sojourn in A =
  // (1 - exp(-e_rate tau)) / e_rate; B and C sojourns are 1/back_rate.
  const double p_b = std::exp(-e_rate * tau);
  const double sojourn_a = (1.0 - p_b) / e_rate;
  const double cycle = sojourn_a + 1.0 / back_rate;  // B or C, same mean
  const double pi_a = sojourn_a / cycle;
  const double pi_b = p_b / back_rate / cycle;
  const double pi_c = (1.0 - p_b) / back_rate / cycle;
  const auto sa = g.find({1, 0, 0});
  const auto sb = g.find({0, 1, 0});
  const auto sc = g.find({0, 0, 1});
  ASSERT_TRUE(sa && sb && sc);
  EXPECT_NEAR(result.probabilities[*sa], pi_a, 1e-9);
  EXPECT_NEAR(result.probabilities[*sb], pi_b, 1e-9);
  EXPECT_NEAR(result.probabilities[*sc], pi_c, 1e-9);
}

// ---- rewards -------------------------------------------------------------------

TEST(Rewards, ExpectedRewardAndVector) {
  const auto g = TangibleReachabilityGraph::build(mm1k(1.0, 2.0, 2));
  const auto chain = Ctmc::from_graph(g);
  const auto pi = ctmc_steady_state(chain.generator);
  const MarkingReward queue_len = [](const petri::Marking& m) {
    return static_cast<double>(m[0]);
  };
  const double expected = expected_reward(g, pi, queue_len);
  // rho = 0.5, K = 2: pi = (4/7, 2/7, 1/7); E[N] = 4/7.
  EXPECT_NEAR(expected, 4.0 / 7.0, 1e-9);
  const auto rv = reward_vector(g, queue_len);
  EXPECT_EQ(rv.size(), g.size());
}

TEST(Rewards, MassByFeature) {
  const auto g = TangibleReachabilityGraph::build(mm1k(1.0, 2.0, 2));
  const auto pi =
      ctmc_steady_state(Ctmc::from_graph(g).generator);
  const auto mass = mass_by_feature(
      g, pi, [](const petri::Marking& m) { return m[0] > 0 ? 1 : 0; });
  ASSERT_EQ(mass.size(), 2u);
  EXPECT_NEAR(mass[0].second + mass[1].second, 1.0, 1e-12);
  EXPECT_NEAR(mass[0].second, 4.0 / 7.0, 1e-9);
}

}  // namespace
}  // namespace nvp::markov
