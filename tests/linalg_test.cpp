#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/dense_matrix.hpp"
#include "src/linalg/iterative.hpp"
#include "src/linalg/lu.hpp"
#include "src/linalg/poisson.hpp"
#include "src/linalg/sparse_matrix.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace nvp::linalg {
namespace {

// ---- DenseMatrix ------------------------------------------------------------

TEST(DenseMatrix, IdentityAndElementAccess) {
  auto id = DenseMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(DenseMatrix, MultiplyMatchesHandComputation) {
  DenseMatrix a(2, 3);
  DenseMatrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  const auto c = a.multiply(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(DenseMatrix, VectorProducts) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Vector x = {1.0, 1.0};
  const auto ax = a.multiply(x);
  EXPECT_DOUBLE_EQ(ax[0], 3.0);
  EXPECT_DOUBLE_EQ(ax[1], 7.0);
  const auto xa = a.left_multiply(x);
  EXPECT_DOUBLE_EQ(xa[0], 4.0);
  EXPECT_DOUBLE_EQ(xa[1], 6.0);
}

TEST(DenseMatrix, TransposeAndNorms) {
  DenseMatrix a(2, 3, 0.0);
  a(1, 2) = -5.0;
  const auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), -5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
  EXPECT_TRUE(a.all_finite());
  a(0, 0) = std::nan("");
  EXPECT_FALSE(a.all_finite());
}

TEST(VectorOps, NormsSumsAndDot) {
  const Vector v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(sum(v), -1.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
  Vector w = {1.0, 3.0};
  normalize_l1(w);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  Vector zero = {0.0};
  EXPECT_THROW(normalize_l1(zero), util::ContractViolation);
}

// ---- LU ----------------------------------------------------------------------

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a(3, 3);
  const double data[3][3] = {{2, 1, 1}, {1, 3, 2}, {1, 0, 0}};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = data[i][j];
  const Vector b = {4, 5, 6};
  const auto x = solve_linear_system(a, b);
  // Solution: x = 6, y = 15, z = -23.
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
  EXPECT_NEAR(x[2], -23.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  util::RandomStream rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(20);
    DenseMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 5.0;  // well-conditioned
    Vector x_true(n);
    for (auto& v : x_true) v = rng.normal();
    const Vector b = a.multiply(x_true);
    const auto x = solve_linear_system(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(Lu, DetectsSingularity) {
  DenseMatrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(LuDecomposition{a}, SingularMatrixError);
}

TEST(Lu, DeterminantWithPivoting) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;  // permutation matrix, det = -1
  EXPECT_NEAR(LuDecomposition{a}.determinant(), -1.0, 1e-12);
}

TEST(Lu, ReusesFactorizationForMultipleRhs) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  LuDecomposition lu(a);
  const auto x1 = lu.solve({1.0, 0.0});
  const auto x2 = lu.solve({0.0, 1.0});
  // Inverse of [[4,1],[1,3]] is [[3,-1],[-1,4]]/11.
  EXPECT_NEAR(x1[0], 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(x2[1], 4.0 / 11.0, 1e-12);
}

// ---- iterative -----------------------------------------------------------------

TEST(Iterative, GaussSeidelMatchesDirect) {
  util::RandomStream rng(7);
  DenseMatrix a(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = rng.normal() * 0.2;
  for (std::size_t i = 0; i < 8; ++i) a(i, i) = 4.0;  // diagonally dominant
  Vector b(8);
  for (auto& v : b) v = rng.normal();
  const auto direct = solve_linear_system(a, b);
  const auto gs = gauss_seidel(a, b);
  ASSERT_TRUE(gs.converged);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(gs.x[i], direct[i], 1e-9);
}

TEST(Iterative, PowerIterationFindsStationary) {
  // Two-state chain: P = [[0.9, 0.1], [0.5, 0.5]]; pi = (5/6, 1/6).
  DenseMatrix p(2, 2);
  p(0, 0) = 0.9;
  p(0, 1) = 0.1;
  p(1, 0) = 0.5;
  p(1, 1) = 0.5;
  const auto res = stationary_power_iteration(p);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 5.0 / 6.0, 1e-9);
  EXPECT_NEAR(res.x[1], 1.0 / 6.0, 1e-9);
}

// ---- sparse --------------------------------------------------------------------

TEST(Sparse, AssemblySumsDuplicatesAndDropsZeros) {
  SparseMatrixCsr m(2, 2,
                    {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}, {1, 0, 0.0}});
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(Sparse, MultiplyAgreesWithDense) {
  util::RandomStream rng(11);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 40; ++k)
    triplets.push_back({rng.uniform_index(6), rng.uniform_index(5),
                        rng.normal()});
  SparseMatrixCsr sparse(6, 5, triplets);
  const auto dense = sparse.to_dense();
  Vector x(5), y(6);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto s1 = sparse.multiply(x);
  const auto d1 = dense.multiply(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(s1[i], d1[i], 1e-12);
  const auto s2 = sparse.left_multiply(y);
  const auto d2 = dense.left_multiply(y);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(s2[i], d2[i], 1e-12);
}

TEST(Sparse, StationaryMatchesDenseSolver) {
  // Simple 3-state stochastic matrix.
  std::vector<Triplet> t = {{0, 1, 1.0},  {1, 0, 0.3}, {1, 2, 0.7},
                            {2, 0, 0.5},  {2, 2, 0.5}};
  SparseMatrixCsr p(3, 3, t);
  const auto sparse_res = stationary_power_iteration(p);
  const auto dense_res = stationary_power_iteration(p.to_dense());
  ASSERT_TRUE(sparse_res.converged);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(sparse_res.x[i], dense_res.x[i], 1e-9);
}

// ---- poisson -------------------------------------------------------------------

TEST(Poisson, DegenerateAtZeroMean) {
  const auto terms = poisson_terms(0.0);
  ASSERT_EQ(terms.pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(terms.pmf[0], 1.0);
}

TEST(Poisson, MassSumsToOne) {
  for (double mean : {0.1, 1.0, 5.0, 30.0, 200.0, 2000.0}) {
    const auto terms = poisson_terms(mean, 1e-13);
    double total = 0.0;
    for (double p : terms.pmf) total += p;
    EXPECT_NEAR(total, 1.0, 1e-11) << "mean " << mean;
    EXPECT_LE(terms.tail_mass, 1e-11);
  }
}

TEST(Poisson, MatchesExactPmfSmallMean) {
  const double mean = 3.0;
  const auto terms = poisson_terms(mean);
  double expected = std::exp(-mean);  // k = 0
  EXPECT_NEAR(terms.pmf[0], expected, 1e-14);
  expected *= mean;  // k = 1
  EXPECT_NEAR(terms.pmf[1], expected, 1e-14);
  expected *= mean / 2.0;  // k = 2
  EXPECT_NEAR(terms.pmf[2], expected, 1e-14);
}

TEST(Poisson, MeanOfDistributionMatches) {
  const auto terms = poisson_terms(12.5, 1e-14);
  double mean = 0.0;
  for (std::size_t k = 0; k < terms.pmf.size(); ++k)
    mean += static_cast<double>(k) * terms.pmf[k];
  EXPECT_NEAR(mean, 12.5, 1e-9);
}

}  // namespace
}  // namespace nvp::linalg
