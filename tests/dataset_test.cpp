#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/dataset/adversarial.hpp"
#include "src/dataset/classifier.hpp"
#include "src/dataset/eval.hpp"
#include "src/dataset/gtsrb_synth.hpp"

namespace nvp::dataset {
namespace {

/// Shared fixture: one moderate dataset, trained ensemble. Training the
/// MLP is the slow part, so do it once per suite.
class TrainedEnsembleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new SyntheticGtsrb({});
    train_ = new Dataset(generator_->generate(4000));
    test_ = new Dataset(generator_->generate(1500));
    ensemble_ = new std::vector<std::unique_ptr<Classifier>>(
        make_reference_ensemble());
    for (auto& clf : *ensemble_) clf->fit(*train_);
  }
  static void TearDownTestSuite() {
    delete ensemble_;
    delete test_;
    delete train_;
    delete generator_;
    ensemble_ = nullptr;
    test_ = nullptr;
    train_ = nullptr;
    generator_ = nullptr;
  }

  static SyntheticGtsrb* generator_;
  static Dataset* train_;
  static Dataset* test_;
  static std::vector<std::unique_ptr<Classifier>>* ensemble_;
};

SyntheticGtsrb* TrainedEnsembleTest::generator_ = nullptr;
Dataset* TrainedEnsembleTest::train_ = nullptr;
Dataset* TrainedEnsembleTest::test_ = nullptr;
std::vector<std::unique_ptr<Classifier>>* TrainedEnsembleTest::ensemble_ =
    nullptr;

// ---- generator ----------------------------------------------------------------

TEST(SyntheticGtsrbTest, ShapesAndLabels) {
  SyntheticGtsrb gen({});
  const auto data = gen.generate(500);
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.num_classes, 43);
  EXPECT_EQ(data.dim, 24);
  std::set<int> labels;
  for (const auto& s : data.samples) {
    EXPECT_EQ(static_cast<int>(s.features.size()), data.dim);
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 43);
    labels.insert(s.label);
  }
  EXPECT_GT(labels.size(), 20u);  // most classes appear
}

TEST(SyntheticGtsrbTest, DeterministicPerSeed) {
  SyntheticGtsrb a({});
  SyntheticGtsrb b({});
  const auto da = a.generate(10);
  const auto db = b.generate(10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(da.samples[i].label, db.samples[i].label);
    EXPECT_EQ(da.samples[i].features, db.samples[i].features);
  }
}

TEST(SyntheticGtsrbTest, PrototypesAreUnitNorm) {
  SyntheticGtsrb gen({});
  for (const auto& proto : gen.prototypes()) {
    double norm = 0.0;
    for (double x : proto) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(SyntheticGtsrbTest, NoiseControlsDifficulty) {
  SyntheticGtsrb::Config easy_cfg;
  easy_cfg.noise = 0.05;
  SyntheticGtsrb::Config hard_cfg;
  hard_cfg.noise = 0.6;
  SyntheticGtsrb easy(easy_cfg), hard(hard_cfg);
  NearestCentroidClassifier clf_easy, clf_hard;
  const auto train_easy = easy.generate(2000);
  const auto train_hard = hard.generate(2000);
  clf_easy.fit(train_easy);
  clf_hard.fit(train_hard);
  EXPECT_GT(accuracy(clf_easy, easy.generate(1000)),
            accuracy(clf_hard, hard.generate(1000)) + 0.1);
}

// ---- classifiers ----------------------------------------------------------------

TEST_F(TrainedEnsembleTest, AllBeatChanceByALot) {
  for (const auto& clf : *ensemble_) {
    const double acc = accuracy(*clf, *test_);
    EXPECT_GT(acc, 0.8) << clf->name();
  }
}

TEST_F(TrainedEnsembleTest, MeanInaccuracyNearPaperP) {
  const auto report = evaluate_ensemble(*ensemble_, *test_);
  // Calibrated to the paper's measured p = 0.08 (+- 0.04 tolerance: the
  // paper itself averages three very different networks).
  EXPECT_NEAR(report.mean_inaccuracy, 0.08, 0.04);
}

TEST_F(TrainedEnsembleTest, EnsembleReportInternallyConsistent) {
  const auto report = evaluate_ensemble(*ensemble_, *test_);
  ASSERT_EQ(report.names.size(), 3u);
  ASSERT_EQ(report.inaccuracies.size(), 3u);
  double mean = 0.0;
  for (double x : report.inaccuracies) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    mean += x;
  }
  EXPECT_NEAR(report.mean_inaccuracy, mean / 3.0, 1e-12);
  // Simultaneous errors cannot exceed the worst individual inaccuracy.
  EXPECT_LE(report.simultaneous_error_rate,
            *std::max_element(report.inaccuracies.begin(),
                              report.inaccuracies.end()) +
                1e-12);
}

TEST_F(TrainedEnsembleTest, VersionsActuallyDisagree) {
  const auto report = evaluate_ensemble(*ensemble_, *test_);
  EXPECT_GT(report.disagreement_rate, 0.01);
  EXPECT_LT(report.disagreement_rate, 0.9);
}

TEST_F(TrainedEnsembleTest, AlphaEstimateInUnitRange) {
  const auto report = evaluate_ensemble(*ensemble_, *test_);
  const double alpha = estimate_alpha(report, 3);
  EXPECT_GT(alpha, 0.0);
  EXPECT_LE(alpha, 1.0);
}

TEST_F(TrainedEnsembleTest, AdversarialPerturbationDegradesTowardPPrime) {
  AdversarialPerturbation adv({}, generator_->prototypes());
  const auto attacked = adv.perturb(*test_);
  const auto clean = evaluate_ensemble(*ensemble_, *test_);
  const auto report = evaluate_ensemble(*ensemble_, attacked);
  EXPECT_GT(report.mean_inaccuracy, clean.mean_inaccuracy + 0.2);
  // Calibrated to the paper's compromised estimate p' = 0.5.
  EXPECT_NEAR(report.mean_inaccuracy, 0.5, 0.15);
}

TEST_F(TrainedEnsembleTest, StrongerAttackHurtsMore) {
  AdversarialPerturbation::Config weak_cfg;
  weak_cfg.epsilon = 0.1;
  AdversarialPerturbation::Config strong_cfg;
  strong_cfg.epsilon = 1.2;
  AdversarialPerturbation weak(weak_cfg, generator_->prototypes());
  AdversarialPerturbation strong(strong_cfg, generator_->prototypes());
  const auto weak_report =
      evaluate_ensemble(*ensemble_, weak.perturb(*test_));
  const auto strong_report =
      evaluate_ensemble(*ensemble_, strong.perturb(*test_));
  EXPECT_GT(strong_report.mean_inaccuracy,
            weak_report.mean_inaccuracy + 0.1);
}

TEST(AdversarialTest, ZeroEpsilonKeepsLabelGeometry) {
  SyntheticGtsrb gen({});
  AdversarialPerturbation::Config cfg;
  cfg.epsilon = 0.0;
  cfg.transfer_noise = 0.0;
  AdversarialPerturbation adv(cfg, gen.prototypes());
  const auto data = gen.generate(50);
  const auto attacked = adv.perturb(data);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(attacked.samples[i].features, data.samples[i].features);
}

TEST(ClassifierUnit, NearestCentroidOnTrivialData) {
  Dataset train;
  train.num_classes = 2;
  train.dim = 2;
  train.samples = {{{0.0, 0.0}, 0}, {{0.1, 0.0}, 0},
                   {{1.0, 1.0}, 1}, {{0.9, 1.0}, 1}};
  NearestCentroidClassifier clf;
  clf.fit(train);
  EXPECT_EQ(clf.predict({0.05, 0.05}), 0);
  EXPECT_EQ(clf.predict({0.95, 0.95}), 1);
}

TEST(ClassifierUnit, SoftmaxSeparatesLinearlySeparableData) {
  util::RandomStream rng(3);
  Dataset train;
  train.num_classes = 2;
  train.dim = 2;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    const double cx = label == 0 ? -1.0 : 1.0;
    train.samples.push_back(
        {{cx + rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)}, label});
  }
  SoftmaxRegressionClassifier clf;
  clf.fit(train);
  EXPECT_GT(accuracy(clf, train), 0.98);
}

TEST(ClassifierUnit, MlpLearnsXorLikeStructure) {
  // Nonlinear task a linear model cannot solve: XOR quadrants.
  util::RandomStream rng(4);
  Dataset train;
  train.num_classes = 2;
  train.dim = 2;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    train.samples.push_back({{x, y}, (x * y > 0.0) ? 1 : 0});
  }
  TinyMlpClassifier::Hyper hyper;
  hyper.hidden = 16;
  hyper.epochs = 60;
  hyper.learning_rate = 0.02;
  TinyMlpClassifier mlp(hyper);
  mlp.fit(train);
  const double mlp_acc = accuracy(mlp, train);
  SoftmaxRegressionClassifier linear;
  linear.fit(train);
  EXPECT_GT(mlp_acc, 0.9);
  EXPECT_GT(mlp_acc, accuracy(linear, train) + 0.2);
}

}  // namespace
}  // namespace nvp::dataset
