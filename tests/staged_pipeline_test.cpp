// Property tests for the staged analysis pipeline (src/core/staged.*): a
// randomized walk over SystemParameters mutations, checking at every step
// that the staged (cached) analyzer is bit-identical to a fresh fully cold
// analyzer, and that the stage caches reuse exactly what the mutation kind
// allows — rate-only mutations must hit the structure cache, reward-only
// mutations must additionally hit the rates cache.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/core/analyzer.hpp"
#include "src/core/staged.hpp"

namespace nvp::core {
namespace {

// Exact comparison on purpose: the staged pipeline's contract is
// bit-identity with the cold path, not numerical closeness.
void expect_bit_identical(const AnalysisResult& staged,
                          const AnalysisResult& cold, int step) {
  EXPECT_EQ(staged.expected_reliability, cold.expected_reliability)
      << "step " << step;
  EXPECT_EQ(staged.tangible_states, cold.tangible_states) << "step " << step;
  EXPECT_EQ(staged.used_dspn_solver, cold.used_dspn_solver)
      << "step " << step;
  EXPECT_EQ(staged.used_sparse_backend, cold.used_sparse_backend)
      << "step " << step;
  EXPECT_EQ(staged.matrix_nonzeros, cold.matrix_nonzeros) << "step " << step;
  ASSERT_EQ(staged.state_distribution.size(), cold.state_distribution.size())
      << "step " << step;
  for (std::size_t i = 0; i < cold.state_distribution.size(); ++i) {
    const auto& a = staged.state_distribution[i];
    const auto& b = cold.state_distribution[i];
    EXPECT_EQ(a.healthy, b.healthy) << "step " << step << " class " << i;
    EXPECT_EQ(a.compromised, b.compromised)
        << "step " << step << " class " << i;
    EXPECT_EQ(a.down, b.down) << "step " << step << " class " << i;
    EXPECT_EQ(a.probability, b.probability)
        << "step " << step << " class " << i;
    EXPECT_EQ(a.reliability, b.reliability)
        << "step " << step << " class " << i;
  }
}

TEST(StagedPipeline, RandomizedMutationWalkMatchesColdAnalyzer) {
  clear_stage_caches();
  ReliabilityAnalyzer::Options cold_options;
  cold_options.use_cache = false;
  const ReliabilityAnalyzer staged;  // default options: use_cache = true
  const ReliabilityAnalyzer cold(cold_options);

  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> unit(0.05, 0.95);
  std::uniform_real_distribution<double> scale(0.5, 2.0);

  SystemParameters params = SystemParameters::paper_six_version();
  enum class Mutation { kStructural, kRateOnly, kRewardOnly };

  // Structural pool: every entry satisfies n >= 3f + 2r + 1 (rejuvenating)
  // or n >= 3f + 1 (plain), so any combination with the drifting timing
  // parameters validates.
  struct Structure {
    int n, f, r;
    bool rejuvenation;
  };
  const std::vector<Structure> structures = {
      {6, 1, 1, true}, {7, 1, 1, true}, {8, 1, 2, true},
      {6, 1, 1, false}, {7, 2, 1, false}};

  // Warm the initial point: the per-step invariants below are about what a
  // *mutation* may invalidate, so the walk starts from populated stages
  // (exactly like the sweep drivers' serial first point).
  expect_bit_identical(staged.analyze(params), cold.analyze(params), -1);

  for (int step = 0; step < 50; ++step) {
    // Interleave: every third step changes the structure, the rest
    // alternate rate-only and reward-only mutations.
    const Mutation kind = step % 3 == 2 ? Mutation::kStructural
                          : step % 2 == 0 ? Mutation::kRateOnly
                                          : Mutation::kRewardOnly;
    switch (kind) {
      case Mutation::kStructural: {
        const auto& s = structures[rng() % structures.size()];
        params.n_versions = s.n;
        params.max_faulty = s.f;
        params.max_rejuvenating = s.r;
        params.rejuvenation = s.rejuvenation;
        break;
      }
      case Mutation::kRateOnly:
        // Continuous multiplicative drift: each step's timing vector is
        // fresh, so the rates stage must miss while the structure hits.
        params.mean_time_to_compromise *= scale(rng);
        params.mean_time_to_failure *= scale(rng);
        if (step % 4 == 0) params.rejuvenation_interval *= scale(rng);
        break;
      case Mutation::kRewardOnly:
        params.alpha = unit(rng);
        params.p = unit(rng) * 0.2;
        params.p_prime = unit(rng);
        break;
    }
    params.validate();

    const StageCacheStats before = stage_cache_stats();
    const AnalysisResult staged_result = staged.analyze(params);
    const StageCacheStats after = stage_cache_stats();
    const AnalysisResult cold_result = cold.analyze(params);
    expect_bit_identical(staged_result, cold_result, step);

    // Reuse invariants per mutation kind. A fresh-key mutation can only
    // miss in the stages downstream of what it changed.
    const auto misses = [&](const runtime::CacheStats& a,
                            const runtime::CacheStats& b) {
      return b.misses - a.misses;
    };
    switch (kind) {
      case Mutation::kStructural:
        // Revisiting a pool entry hits; a first visit misses. Either way
        // at most one exploration happens.
        EXPECT_LE(misses(before.structure, after.structure), 1u)
            << "step " << step;
        break;
      case Mutation::kRateOnly:
        EXPECT_EQ(misses(before.structure, after.structure), 0u)
            << "step " << step << ": rate-only mutation re-explored";
        EXPECT_EQ(misses(before.rates, after.rates), 1u) << "step " << step;
        EXPECT_EQ(misses(before.reward_table, after.reward_table), 0u)
            << "step " << step
            << ": rate-only mutation rebuilt the reward table";
        break;
      case Mutation::kRewardOnly:
        EXPECT_EQ(misses(before.structure, after.structure), 0u)
            << "step " << step << ": reward-only mutation re-explored";
        EXPECT_EQ(misses(before.rates, after.rates), 0u)
            << "step " << step << ": reward-only mutation re-solved";
        break;
    }
  }
}

TEST(StagedPipeline, UseCacheFalseBypassesEveryStage) {
  clear_stage_caches();
  ReliabilityAnalyzer::Options cold_options;
  cold_options.use_cache = false;
  const ReliabilityAnalyzer cold(cold_options);
  const auto params = SystemParameters::paper_six_version();
  const auto first = cold.analyze(params);
  const auto second = cold.analyze(params);
  expect_bit_identical(first, second, 0);
  const StageCacheStats stats = stage_cache_stats();
  EXPECT_EQ(stats.structure.lookups(), 0u);
  EXPECT_EQ(stats.rates.lookups(), 0u);
  EXPECT_EQ(stats.reward_table.lookups(), 0u);
  EXPECT_EQ(stats.rewards.lookups(), 0u);
  EXPECT_EQ(stats.whole_result.lookups(), 0u);
}

TEST(StagedPipeline, StageKeysEmbedUpstreamKeys) {
  // Changing a structural parameter must change every stage key; changing
  // a timing parameter only the rates key and below; changing alpha only
  // the reward keys.
  const ReliabilityAnalyzer::Options options;
  auto base = SystemParameters::paper_six_version();

  auto structural = base;
  structural.n_versions = 7;
  EXPECT_NE(structure_stage_key(base), structure_stage_key(structural));
  EXPECT_NE(rates_stage_key(base, options.solver),
            rates_stage_key(structural, options.solver));
  EXPECT_NE(rewards_stage_key(base, options),
            rewards_stage_key(structural, options));

  auto timing = base;
  timing.mean_time_to_compromise *= 2.0;
  EXPECT_EQ(structure_stage_key(base), structure_stage_key(timing));
  EXPECT_NE(rates_stage_key(base, options.solver),
            rates_stage_key(timing, options.solver));
  EXPECT_EQ(reward_table_stage_key(base, options.convention),
            reward_table_stage_key(timing, options.convention));

  auto reward = base;
  reward.alpha = 0.75;
  EXPECT_EQ(structure_stage_key(base), structure_stage_key(reward));
  EXPECT_EQ(rates_stage_key(base, options.solver),
            rates_stage_key(reward, options.solver));
  EXPECT_NE(reward_table_stage_key(base, options.convention),
            reward_table_stage_key(reward, options.convention));
  EXPECT_NE(rewards_stage_key(base, options),
            rewards_stage_key(reward, options));
}

}  // namespace
}  // namespace nvp::core
