#include <gtest/gtest.h>

#include <cmath>

#include "src/markov/ctmc.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/petri/reachability.hpp"
#include "src/sim/dspn_simulator.hpp"
#include "src/sim/estimators.hpp"
#include "src/sim/event_queue.hpp"
#include "src/util/contracts.hpp"

namespace nvp::sim {
namespace {

using petri::Marking;
using petri::PetriNet;

// ---- event queue ------------------------------------------------------------

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  q.schedule(5.0, 1, 0);
  q.schedule(2.0, 2, 0);
  q.schedule(5.0, 3, 0);  // same time as payload 1, scheduled later
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 1u);
  EXPECT_EQ(q.pop().payload, 3u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue q;
  q.schedule(1.0, 9, 0);
  EXPECT_EQ(q.peek().payload, 9u);
  EXPECT_EQ(q.size(), 1u);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsNegativeTime) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, 0, 0), util::ContractViolation);
}

// ---- DSPN simulator ----------------------------------------------------------

PetriNet two_state(double fail, double repair) {
  PetriNet net("two-state");
  const auto up = net.add_place("up", 1);
  const auto down = net.add_place("down", 0);
  const auto f = net.add_exponential("fail", fail);
  net.add_input_arc(f, up);
  net.add_output_arc(f, down);
  const auto r = net.add_exponential("repair", repair);
  net.add_input_arc(r, down);
  net.add_output_arc(r, up);
  return net;
}

TEST(DspnSimulator, TwoStateAvailabilityMatchesClosedForm) {
  const auto net = two_state(0.01, 0.1);
  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 2e5;
  opt.warmup_time = 1e3;
  opt.seed = 5;
  const markov::MarkingReward up_indicator = [](const Marking& m) {
    return m[0] == 1 ? 1.0 : 0.0;
  };
  const auto est = simulator.estimate(up_indicator, opt, 10);
  const double expected = 0.1 / 0.11;
  EXPECT_NEAR(est.mean, expected, 3.0 * std::max(est.std_error, 1e-4));
}

TEST(DspnSimulator, DeterministicCycleMatchesAnalytic) {
  // A --D(tau)--> B --exp(r)--> A; pi_A = tau / (tau + 1/r).
  const double tau = 4.0, r = 0.5;
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto d = net.add_deterministic("D", tau);
  net.add_input_arc(d, a);
  net.add_output_arc(d, b);
  const auto back = net.add_exponential("back", r);
  net.add_input_arc(back, b);
  net.add_output_arc(back, a);

  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 1e5;
  opt.warmup_time = 100.0;
  opt.seed = 21;
  const markov::MarkingReward in_a = [](const Marking& m) {
    return m[0] == 1 ? 1.0 : 0.0;
  };
  const auto est = simulator.estimate(in_a, opt, 8);
  const double expected = tau / (tau + 1.0 / r);
  EXPECT_NEAR(est.mean, expected, 0.01);
}

TEST(DspnSimulator, ImmediateWeightsRespected) {
  // Timed firing routes through an immediate 1:3 conflict; measure the
  // resulting branch masses.
  PetriNet net;
  const auto src = net.add_place("src", 1);
  const auto mid = net.add_place("mid", 0);
  const auto l = net.add_place("L", 0);
  const auto rr = net.add_place("R", 0);
  const auto t = net.add_exponential("T", 10.0);
  net.add_input_arc(t, src);
  net.add_output_arc(t, mid);
  const auto il = net.add_immediate("IL", 1.0);
  net.add_input_arc(il, mid);
  net.add_output_arc(il, l);
  const auto ir = net.add_immediate("IR", 3.0);
  net.add_input_arc(ir, mid);
  net.add_output_arc(ir, rr);
  const auto back_l = net.add_exponential("backL", 10.0);
  net.add_input_arc(back_l, l);
  net.add_output_arc(back_l, src);
  const auto back_r = net.add_exponential("backR", 10.0);
  net.add_input_arc(back_r, rr);
  net.add_output_arc(back_r, src);

  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 5e4;
  opt.seed = 33;
  const auto result = simulator.run(
      {[l](const Marking& m) { return m[l.index] == 1 ? 1.0 : 0.0; },
       [rr](const Marking& m) { return m[rr.index] == 1 ? 1.0 : 0.0; }},
      opt);
  const double mass_l = result.time_average_rewards[0];
  const double mass_r = result.time_average_rewards[1];
  EXPECT_NEAR(mass_r / (mass_l + mass_r), 0.75, 0.02);
}

TEST(DspnSimulator, DeadMarkingSpendsRemainingHorizonThere) {
  PetriNet net;
  const auto a = net.add_place("A", 1);
  const auto b = net.add_place("B", 0);
  const auto t = net.add_exponential("T", 100.0);
  net.add_input_arc(t, a);
  net.add_output_arc(t, b);
  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 1000.0;
  opt.seed = 3;
  const auto result = simulator.run(
      {[b](const Marking& m) { return m[b.index] == 1 ? 1.0 : 0.0; }}, opt);
  EXPECT_GT(result.time_average_rewards[0], 0.99);
}

TEST(DspnSimulator, ReproducibleWithSameSeed) {
  const auto net = two_state(0.2, 0.5);
  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 1e4;
  opt.seed = 77;
  const markov::MarkingReward up = [](const Marking& m) {
    return m[0] == 1 ? 1.0 : 0.0;
  };
  const auto r1 = simulator.run({up}, opt);
  const auto r2 = simulator.run({up}, opt);
  EXPECT_DOUBLE_EQ(r1.time_average_rewards[0], r2.time_average_rewards[0]);
  EXPECT_EQ(r1.timed_firings, r2.timed_firings);
  opt.seed = 78;
  const auto r3 = simulator.run({up}, opt);
  EXPECT_NE(r1.time_average_rewards[0], r3.time_average_rewards[0]);
}

TEST(DspnSimulator, FeatureDistributionSumsToOne) {
  const auto net = two_state(0.3, 0.7);
  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 2e4;
  opt.seed = 9;
  const auto dist = simulator.feature_distribution(
      [](const Marking& m) { return m[0]; }, opt);
  double total = 0.0;
  for (const auto& [_, mass] : dist) total += mass;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(dist.at(1), 0.7, 0.05);
}

TEST(DspnSimulator, EstimateGivesSaneConfidenceInterval) {
  const auto net = two_state(0.1, 0.4);
  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 1e4;
  opt.warmup_time = 100.0;
  opt.seed = 13;
  const markov::MarkingReward up = [](const Marking& m) {
    return m[0] == 1 ? 1.0 : 0.0;
  };
  const auto est = simulator.estimate(up, opt, 12);
  EXPECT_EQ(est.replications, 12u);
  EXPECT_LT(est.ci.lo, est.mean);
  EXPECT_GT(est.ci.hi, est.mean);
  EXPECT_TRUE(est.ci.contains(0.8));
}

TEST(DspnSimulator, MatchesDspnSolverOnMixedNet) {
  // Deterministic maintenance clock plus exponential dynamics — the shape
  // of the paper's rejuvenation model, validated end-to-end.
  PetriNet net;
  const auto up = net.add_place("up", 2);
  const auto degraded = net.add_place("degraded", 0);
  const auto clock = net.add_place("clock", 1);
  const auto expired = net.add_place("expired", 0);
  const auto wear = net.add_exponential("wear", 0.02);
  net.add_input_arc(wear, up);
  net.add_output_arc(wear, degraded);
  const auto tick = net.add_deterministic("tick", 30.0);
  net.add_input_arc(tick, clock);
  net.add_output_arc(tick, expired);
  // Maintenance: instantly restores all degraded units, then re-arms.
  const auto fix = net.add_immediate("fix");
  net.add_input_arc(fix, expired);
  net.add_output_arc(fix, clock);
  net.add_input_arc(fix, degraded,
                    [degraded](const Marking& m) {
                      return m[degraded.index];
                    });
  net.add_output_arc(fix, up, [degraded](const Marking& m) {
    return m[degraded.index];
  });

  const auto g = petri::TangibleReachabilityGraph::build(net);
  const auto analytic = markov::DspnSteadyStateSolver().solve(g);
  const markov::MarkingReward both_up = [up](const Marking& m) {
    return m[up.index] == 2 ? 1.0 : 0.0;
  };
  double analytic_value = 0.0;
  for (std::size_t s = 0; s < g.size(); ++s)
    analytic_value += analytic.probabilities[s] * both_up(g.marking(s));

  DspnSimulator simulator(net);
  SimulationOptions opt;
  opt.horizon = 2e5;
  opt.warmup_time = 500.0;
  opt.seed = 101;
  const auto est = simulator.estimate(both_up, opt, 8);
  EXPECT_NEAR(est.mean, analytic_value,
              std::max(4.0 * est.std_error, 0.01));
}

// ---- estimators -----------------------------------------------------------------

TEST(Estimators, BatchMeansBasics) {
  std::vector<double> obs;
  util::RandomStream rng(55);
  for (int i = 0; i < 1000; ++i) obs.push_back(rng.normal(5.0, 1.0));
  const auto result = batch_means(obs, 10);
  EXPECT_EQ(result.batches, 10u);
  EXPECT_NEAR(result.mean, 5.0, 0.2);
  EXPECT_TRUE(result.ci.contains(5.0));
}

TEST(Estimators, BatchMeansRejectsTooFewObservations) {
  std::vector<double> obs(10, 1.0);
  EXPECT_THROW(batch_means(obs, 8), util::ContractViolation);
}

TEST(Estimators, PrecisionReached) {
  util::RunningStats stats;
  EXPECT_FALSE(precision_reached(stats, 0.95, 0.01));
  for (int i = 0; i < 1000; ++i) stats.add(10.0 + (i % 2 ? 0.001 : -0.001));
  EXPECT_TRUE(precision_reached(stats, 0.95, 0.01));
}

}  // namespace
}  // namespace nvp::sim
