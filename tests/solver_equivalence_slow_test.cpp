// Large-architecture dense-vs-sparse equivalence (ctest label: slow, run by
// the scheduled nightly rather than the per-push tier-1 gate). These are the
// state spaces the sparse backend exists for; each configuration checks the
// full stationary distribution of both backends against each other at 1e-10.

#include <gtest/gtest.h>

#include "src/core/analyzer.hpp"
#include "src/core/model_factory.hpp"
#include "src/markov/dspn_solver.hpp"
#include "src/petri/reachability.hpp"

namespace nvp {
namespace {

struct Config {
  int n, f, r;
};

class LargeArchitectureEquivalence : public ::testing::TestWithParam<Config> {
};

TEST_P(LargeArchitectureEquivalence, FullDistributionAgrees) {
  const auto [n, f, r] = GetParam();
  auto params = core::SystemParameters::paper_six_version();
  params.n_versions = n;
  params.max_faulty = f;
  params.max_rejuvenating = r;
  const auto model = core::PerceptionModelFactory::build(params);
  const auto g = petri::TangibleReachabilityGraph::build(model.net);

  markov::DspnSteadyStateSolver::Options options;
  options.backend = markov::SolverBackend::kDense;
  const auto dense = markov::DspnSteadyStateSolver(options).solve(g);
  options.backend = markov::SolverBackend::kSparse;
  const auto sparse = markov::DspnSteadyStateSolver(options).solve(g);

  EXPECT_EQ(dense.backend_used, markov::SolverBackend::kDense);
  EXPECT_EQ(sparse.backend_used, markov::SolverBackend::kSparse);
  ASSERT_EQ(dense.probabilities.size(), sparse.probabilities.size());
  for (std::size_t i = 0; i < dense.probabilities.size(); ++i)
    EXPECT_NEAR(sparse.probabilities[i], dense.probabilities[i], 1e-10)
        << "state " << i << " of " << g.size();
}

INSTANTIATE_TEST_SUITE_P(ScaledArchitectures, LargeArchitectureEquivalence,
                         ::testing::Values(Config{10, 2, 1},
                                           Config{12, 3, 1},
                                           Config{14, 3, 2}),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f) + "r" +
                                  std::to_string(info.param.r);
                         });

}  // namespace
}  // namespace nvp
