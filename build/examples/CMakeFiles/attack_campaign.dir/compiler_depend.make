# Empty compiler generated dependencies file for attack_campaign.
# This may be replaced when dependencies are built.
