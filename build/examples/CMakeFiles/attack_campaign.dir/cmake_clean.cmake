file(REMOVE_RECURSE
  "CMakeFiles/attack_campaign.dir/attack_campaign.cpp.o"
  "CMakeFiles/attack_campaign.dir/attack_campaign.cpp.o.d"
  "attack_campaign"
  "attack_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
