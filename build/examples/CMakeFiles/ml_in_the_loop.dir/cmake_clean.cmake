file(REMOVE_RECURSE
  "CMakeFiles/ml_in_the_loop.dir/ml_in_the_loop.cpp.o"
  "CMakeFiles/ml_in_the_loop.dir/ml_in_the_loop.cpp.o.d"
  "ml_in_the_loop"
  "ml_in_the_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_in_the_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
