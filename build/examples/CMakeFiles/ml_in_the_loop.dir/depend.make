# Empty dependencies file for ml_in_the_loop.
# This may be replaced when dependencies are built.
