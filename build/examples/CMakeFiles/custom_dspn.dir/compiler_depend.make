# Empty compiler generated dependencies file for custom_dspn.
# This may be replaced when dependencies are built.
