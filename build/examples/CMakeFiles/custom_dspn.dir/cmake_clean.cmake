file(REMOVE_RECURSE
  "CMakeFiles/custom_dspn.dir/custom_dspn.cpp.o"
  "CMakeFiles/custom_dspn.dir/custom_dspn.cpp.o.d"
  "custom_dspn"
  "custom_dspn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dspn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
