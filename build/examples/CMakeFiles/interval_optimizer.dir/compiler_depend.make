# Empty compiler generated dependencies file for interval_optimizer.
# This may be replaced when dependencies are built.
