file(REMOVE_RECURSE
  "CMakeFiles/interval_optimizer.dir/interval_optimizer.cpp.o"
  "CMakeFiles/interval_optimizer.dir/interval_optimizer.cpp.o.d"
  "interval_optimizer"
  "interval_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
