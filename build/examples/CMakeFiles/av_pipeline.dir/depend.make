# Empty dependencies file for av_pipeline.
# This may be replaced when dependencies are built.
