file(REMOVE_RECURSE
  "CMakeFiles/av_pipeline.dir/av_pipeline.cpp.o"
  "CMakeFiles/av_pipeline.dir/av_pipeline.cpp.o.d"
  "av_pipeline"
  "av_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
