# Empty compiler generated dependencies file for nvp_markov.
# This may be replaced when dependencies are built.
