file(REMOVE_RECURSE
  "libnvp_markov.a"
)
