
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/absorption.cpp" "src/markov/CMakeFiles/nvp_markov.dir/absorption.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/absorption.cpp.o.d"
  "/root/repo/src/markov/ctmc.cpp" "src/markov/CMakeFiles/nvp_markov.dir/ctmc.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/ctmc.cpp.o.d"
  "/root/repo/src/markov/dspn_solver.cpp" "src/markov/CMakeFiles/nvp_markov.dir/dspn_solver.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/dspn_solver.cpp.o.d"
  "/root/repo/src/markov/dtmc.cpp" "src/markov/CMakeFiles/nvp_markov.dir/dtmc.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/dtmc.cpp.o.d"
  "/root/repo/src/markov/rewards.cpp" "src/markov/CMakeFiles/nvp_markov.dir/rewards.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/rewards.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/markov/CMakeFiles/nvp_markov.dir/transient.cpp.o" "gcc" "src/markov/CMakeFiles/nvp_markov.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nvp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nvp_petri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
