file(REMOVE_RECURSE
  "CMakeFiles/nvp_markov.dir/absorption.cpp.o"
  "CMakeFiles/nvp_markov.dir/absorption.cpp.o.d"
  "CMakeFiles/nvp_markov.dir/ctmc.cpp.o"
  "CMakeFiles/nvp_markov.dir/ctmc.cpp.o.d"
  "CMakeFiles/nvp_markov.dir/dspn_solver.cpp.o"
  "CMakeFiles/nvp_markov.dir/dspn_solver.cpp.o.d"
  "CMakeFiles/nvp_markov.dir/dtmc.cpp.o"
  "CMakeFiles/nvp_markov.dir/dtmc.cpp.o.d"
  "CMakeFiles/nvp_markov.dir/rewards.cpp.o"
  "CMakeFiles/nvp_markov.dir/rewards.cpp.o.d"
  "CMakeFiles/nvp_markov.dir/transient.cpp.o"
  "CMakeFiles/nvp_markov.dir/transient.cpp.o.d"
  "libnvp_markov.a"
  "libnvp_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
