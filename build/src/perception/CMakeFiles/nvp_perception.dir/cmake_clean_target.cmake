file(REMOVE_RECURSE
  "libnvp_perception.a"
)
