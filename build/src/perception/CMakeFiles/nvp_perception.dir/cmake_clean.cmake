file(REMOVE_RECURSE
  "CMakeFiles/nvp_perception.dir/adaptive.cpp.o"
  "CMakeFiles/nvp_perception.dir/adaptive.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/ensemble_system.cpp.o"
  "CMakeFiles/nvp_perception.dir/ensemble_system.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/environment.cpp.o"
  "CMakeFiles/nvp_perception.dir/environment.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/fault_injector.cpp.o"
  "CMakeFiles/nvp_perception.dir/fault_injector.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/module_sim.cpp.o"
  "CMakeFiles/nvp_perception.dir/module_sim.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/rejuvenator.cpp.o"
  "CMakeFiles/nvp_perception.dir/rejuvenator.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/sensor.cpp.o"
  "CMakeFiles/nvp_perception.dir/sensor.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/system.cpp.o"
  "CMakeFiles/nvp_perception.dir/system.cpp.o.d"
  "CMakeFiles/nvp_perception.dir/voter.cpp.o"
  "CMakeFiles/nvp_perception.dir/voter.cpp.o.d"
  "libnvp_perception.a"
  "libnvp_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
