
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/adaptive.cpp" "src/perception/CMakeFiles/nvp_perception.dir/adaptive.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/adaptive.cpp.o.d"
  "/root/repo/src/perception/ensemble_system.cpp" "src/perception/CMakeFiles/nvp_perception.dir/ensemble_system.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/ensemble_system.cpp.o.d"
  "/root/repo/src/perception/environment.cpp" "src/perception/CMakeFiles/nvp_perception.dir/environment.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/environment.cpp.o.d"
  "/root/repo/src/perception/fault_injector.cpp" "src/perception/CMakeFiles/nvp_perception.dir/fault_injector.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/fault_injector.cpp.o.d"
  "/root/repo/src/perception/module_sim.cpp" "src/perception/CMakeFiles/nvp_perception.dir/module_sim.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/module_sim.cpp.o.d"
  "/root/repo/src/perception/rejuvenator.cpp" "src/perception/CMakeFiles/nvp_perception.dir/rejuvenator.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/rejuvenator.cpp.o.d"
  "/root/repo/src/perception/sensor.cpp" "src/perception/CMakeFiles/nvp_perception.dir/sensor.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/sensor.cpp.o.d"
  "/root/repo/src/perception/system.cpp" "src/perception/CMakeFiles/nvp_perception.dir/system.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/system.cpp.o.d"
  "/root/repo/src/perception/voter.cpp" "src/perception/CMakeFiles/nvp_perception.dir/voter.cpp.o" "gcc" "src/perception/CMakeFiles/nvp_perception.dir/voter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nvp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/nvp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/nvp_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nvp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nvp_petri.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
