# Empty compiler generated dependencies file for nvp_perception.
# This may be replaced when dependencies are built.
