file(REMOVE_RECURSE
  "libnvp_util.a"
)
