file(REMOVE_RECURSE
  "CMakeFiles/nvp_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/nvp_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/nvp_util.dir/cli.cpp.o"
  "CMakeFiles/nvp_util.dir/cli.cpp.o.d"
  "CMakeFiles/nvp_util.dir/csv.cpp.o"
  "CMakeFiles/nvp_util.dir/csv.cpp.o.d"
  "CMakeFiles/nvp_util.dir/log.cpp.o"
  "CMakeFiles/nvp_util.dir/log.cpp.o.d"
  "CMakeFiles/nvp_util.dir/rng.cpp.o"
  "CMakeFiles/nvp_util.dir/rng.cpp.o.d"
  "CMakeFiles/nvp_util.dir/stats.cpp.o"
  "CMakeFiles/nvp_util.dir/stats.cpp.o.d"
  "CMakeFiles/nvp_util.dir/string_util.cpp.o"
  "CMakeFiles/nvp_util.dir/string_util.cpp.o.d"
  "CMakeFiles/nvp_util.dir/table.cpp.o"
  "CMakeFiles/nvp_util.dir/table.cpp.o.d"
  "libnvp_util.a"
  "libnvp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
