# Empty dependencies file for nvp_util.
# This may be replaced when dependencies are built.
