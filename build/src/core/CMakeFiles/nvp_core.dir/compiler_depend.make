# Empty compiler generated dependencies file for nvp_core.
# This may be replaced when dependencies are built.
