
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/nvp_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/architecture_space.cpp" "src/core/CMakeFiles/nvp_core.dir/architecture_space.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/architecture_space.cpp.o.d"
  "/root/repo/src/core/model_factory.cpp" "src/core/CMakeFiles/nvp_core.dir/model_factory.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/model_factory.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/nvp_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/nvp_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/params.cpp.o.d"
  "/root/repo/src/core/reliability.cpp" "src/core/CMakeFiles/nvp_core.dir/reliability.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/reliability.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/nvp_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/nvp_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/sweep.cpp.o.d"
  "/root/repo/src/core/transient.cpp" "src/core/CMakeFiles/nvp_core.dir/transient.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/transient.cpp.o.d"
  "/root/repo/src/core/voting.cpp" "src/core/CMakeFiles/nvp_core.dir/voting.cpp.o" "gcc" "src/core/CMakeFiles/nvp_core.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nvp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nvp_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/nvp_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
