file(REMOVE_RECURSE
  "libnvp_core.a"
)
