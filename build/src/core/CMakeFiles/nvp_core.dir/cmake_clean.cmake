file(REMOVE_RECURSE
  "CMakeFiles/nvp_core.dir/analyzer.cpp.o"
  "CMakeFiles/nvp_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/nvp_core.dir/architecture_space.cpp.o"
  "CMakeFiles/nvp_core.dir/architecture_space.cpp.o.d"
  "CMakeFiles/nvp_core.dir/model_factory.cpp.o"
  "CMakeFiles/nvp_core.dir/model_factory.cpp.o.d"
  "CMakeFiles/nvp_core.dir/optimizer.cpp.o"
  "CMakeFiles/nvp_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/nvp_core.dir/params.cpp.o"
  "CMakeFiles/nvp_core.dir/params.cpp.o.d"
  "CMakeFiles/nvp_core.dir/reliability.cpp.o"
  "CMakeFiles/nvp_core.dir/reliability.cpp.o.d"
  "CMakeFiles/nvp_core.dir/sensitivity.cpp.o"
  "CMakeFiles/nvp_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/nvp_core.dir/sweep.cpp.o"
  "CMakeFiles/nvp_core.dir/sweep.cpp.o.d"
  "CMakeFiles/nvp_core.dir/transient.cpp.o"
  "CMakeFiles/nvp_core.dir/transient.cpp.o.d"
  "CMakeFiles/nvp_core.dir/voting.cpp.o"
  "CMakeFiles/nvp_core.dir/voting.cpp.o.d"
  "libnvp_core.a"
  "libnvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
