file(REMOVE_RECURSE
  "CMakeFiles/nvp_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/nvp_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/nvp_linalg.dir/iterative.cpp.o"
  "CMakeFiles/nvp_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/nvp_linalg.dir/lu.cpp.o"
  "CMakeFiles/nvp_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/nvp_linalg.dir/poisson.cpp.o"
  "CMakeFiles/nvp_linalg.dir/poisson.cpp.o.d"
  "CMakeFiles/nvp_linalg.dir/sparse_matrix.cpp.o"
  "CMakeFiles/nvp_linalg.dir/sparse_matrix.cpp.o.d"
  "libnvp_linalg.a"
  "libnvp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
