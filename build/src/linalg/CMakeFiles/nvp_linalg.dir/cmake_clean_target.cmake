file(REMOVE_RECURSE
  "libnvp_linalg.a"
)
