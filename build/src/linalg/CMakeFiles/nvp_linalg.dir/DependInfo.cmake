
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/nvp_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/nvp_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/iterative.cpp" "src/linalg/CMakeFiles/nvp_linalg.dir/iterative.cpp.o" "gcc" "src/linalg/CMakeFiles/nvp_linalg.dir/iterative.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/linalg/CMakeFiles/nvp_linalg.dir/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/nvp_linalg.dir/lu.cpp.o.d"
  "/root/repo/src/linalg/poisson.cpp" "src/linalg/CMakeFiles/nvp_linalg.dir/poisson.cpp.o" "gcc" "src/linalg/CMakeFiles/nvp_linalg.dir/poisson.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/linalg/CMakeFiles/nvp_linalg.dir/sparse_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/nvp_linalg.dir/sparse_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
