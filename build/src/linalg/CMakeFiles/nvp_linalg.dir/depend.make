# Empty dependencies file for nvp_linalg.
# This may be replaced when dependencies are built.
