file(REMOVE_RECURSE
  "libnvp_petri.a"
)
