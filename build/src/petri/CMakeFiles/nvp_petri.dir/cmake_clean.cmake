file(REMOVE_RECURSE
  "CMakeFiles/nvp_petri.dir/dot_export.cpp.o"
  "CMakeFiles/nvp_petri.dir/dot_export.cpp.o.d"
  "CMakeFiles/nvp_petri.dir/dspn_parser.cpp.o"
  "CMakeFiles/nvp_petri.dir/dspn_parser.cpp.o.d"
  "CMakeFiles/nvp_petri.dir/expression.cpp.o"
  "CMakeFiles/nvp_petri.dir/expression.cpp.o.d"
  "CMakeFiles/nvp_petri.dir/net.cpp.o"
  "CMakeFiles/nvp_petri.dir/net.cpp.o.d"
  "CMakeFiles/nvp_petri.dir/reachability.cpp.o"
  "CMakeFiles/nvp_petri.dir/reachability.cpp.o.d"
  "CMakeFiles/nvp_petri.dir/structural.cpp.o"
  "CMakeFiles/nvp_petri.dir/structural.cpp.o.d"
  "libnvp_petri.a"
  "libnvp_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
