# Empty compiler generated dependencies file for nvp_petri.
# This may be replaced when dependencies are built.
