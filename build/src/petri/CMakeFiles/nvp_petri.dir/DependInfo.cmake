
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/dot_export.cpp" "src/petri/CMakeFiles/nvp_petri.dir/dot_export.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/dot_export.cpp.o.d"
  "/root/repo/src/petri/dspn_parser.cpp" "src/petri/CMakeFiles/nvp_petri.dir/dspn_parser.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/dspn_parser.cpp.o.d"
  "/root/repo/src/petri/expression.cpp" "src/petri/CMakeFiles/nvp_petri.dir/expression.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/expression.cpp.o.d"
  "/root/repo/src/petri/net.cpp" "src/petri/CMakeFiles/nvp_petri.dir/net.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/net.cpp.o.d"
  "/root/repo/src/petri/reachability.cpp" "src/petri/CMakeFiles/nvp_petri.dir/reachability.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/reachability.cpp.o.d"
  "/root/repo/src/petri/structural.cpp" "src/petri/CMakeFiles/nvp_petri.dir/structural.cpp.o" "gcc" "src/petri/CMakeFiles/nvp_petri.dir/structural.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
