file(REMOVE_RECURSE
  "libnvp_dataset.a"
)
