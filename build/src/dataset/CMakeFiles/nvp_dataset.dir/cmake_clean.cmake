file(REMOVE_RECURSE
  "CMakeFiles/nvp_dataset.dir/adversarial.cpp.o"
  "CMakeFiles/nvp_dataset.dir/adversarial.cpp.o.d"
  "CMakeFiles/nvp_dataset.dir/classifier.cpp.o"
  "CMakeFiles/nvp_dataset.dir/classifier.cpp.o.d"
  "CMakeFiles/nvp_dataset.dir/eval.cpp.o"
  "CMakeFiles/nvp_dataset.dir/eval.cpp.o.d"
  "CMakeFiles/nvp_dataset.dir/gtsrb_synth.cpp.o"
  "CMakeFiles/nvp_dataset.dir/gtsrb_synth.cpp.o.d"
  "libnvp_dataset.a"
  "libnvp_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
