
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/adversarial.cpp" "src/dataset/CMakeFiles/nvp_dataset.dir/adversarial.cpp.o" "gcc" "src/dataset/CMakeFiles/nvp_dataset.dir/adversarial.cpp.o.d"
  "/root/repo/src/dataset/classifier.cpp" "src/dataset/CMakeFiles/nvp_dataset.dir/classifier.cpp.o" "gcc" "src/dataset/CMakeFiles/nvp_dataset.dir/classifier.cpp.o.d"
  "/root/repo/src/dataset/eval.cpp" "src/dataset/CMakeFiles/nvp_dataset.dir/eval.cpp.o" "gcc" "src/dataset/CMakeFiles/nvp_dataset.dir/eval.cpp.o.d"
  "/root/repo/src/dataset/gtsrb_synth.cpp" "src/dataset/CMakeFiles/nvp_dataset.dir/gtsrb_synth.cpp.o" "gcc" "src/dataset/CMakeFiles/nvp_dataset.dir/gtsrb_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
