# Empty dependencies file for nvp_dataset.
# This may be replaced when dependencies are built.
