file(REMOVE_RECURSE
  "CMakeFiles/nvp_sim.dir/dspn_simulator.cpp.o"
  "CMakeFiles/nvp_sim.dir/dspn_simulator.cpp.o.d"
  "CMakeFiles/nvp_sim.dir/estimators.cpp.o"
  "CMakeFiles/nvp_sim.dir/estimators.cpp.o.d"
  "CMakeFiles/nvp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/nvp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/nvp_sim.dir/transient_profile.cpp.o"
  "CMakeFiles/nvp_sim.dir/transient_profile.cpp.o.d"
  "libnvp_sim.a"
  "libnvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
