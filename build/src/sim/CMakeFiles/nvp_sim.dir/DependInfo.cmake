
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dspn_simulator.cpp" "src/sim/CMakeFiles/nvp_sim.dir/dspn_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/nvp_sim.dir/dspn_simulator.cpp.o.d"
  "/root/repo/src/sim/estimators.cpp" "src/sim/CMakeFiles/nvp_sim.dir/estimators.cpp.o" "gcc" "src/sim/CMakeFiles/nvp_sim.dir/estimators.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/nvp_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/nvp_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/transient_profile.cpp" "src/sim/CMakeFiles/nvp_sim.dir/transient_profile.cpp.o" "gcc" "src/sim/CMakeFiles/nvp_sim.dir/transient_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nvp_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/nvp_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nvp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
