file(REMOVE_RECURSE
  "libnvp_sim.a"
)
