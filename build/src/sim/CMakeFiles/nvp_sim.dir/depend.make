# Empty dependencies file for nvp_sim.
# This may be replaced when dependencies are built.
