file(REMOVE_RECURSE
  "CMakeFiles/nvpcli.dir/nvpcli.cpp.o"
  "CMakeFiles/nvpcli.dir/nvpcli.cpp.o.d"
  "nvpcli"
  "nvpcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvpcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
