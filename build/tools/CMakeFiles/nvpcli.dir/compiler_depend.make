# Empty compiler generated dependencies file for nvpcli.
# This may be replaced when dependencies are built.
