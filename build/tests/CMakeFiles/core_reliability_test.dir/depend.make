# Empty dependencies file for core_reliability_test.
# This may be replaced when dependencies are built.
