file(REMOVE_RECURSE
  "CMakeFiles/core_reliability_test.dir/core_reliability_test.cpp.o"
  "CMakeFiles/core_reliability_test.dir/core_reliability_test.cpp.o.d"
  "core_reliability_test"
  "core_reliability_test.pdb"
  "core_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
