file(REMOVE_RECURSE
  "CMakeFiles/markov_test.dir/markov_test.cpp.o"
  "CMakeFiles/markov_test.dir/markov_test.cpp.o.d"
  "markov_test"
  "markov_test.pdb"
  "markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
