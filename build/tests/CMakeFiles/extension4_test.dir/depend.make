# Empty dependencies file for extension4_test.
# This may be replaced when dependencies are built.
