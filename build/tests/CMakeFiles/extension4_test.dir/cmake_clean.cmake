file(REMOVE_RECURSE
  "CMakeFiles/extension4_test.dir/extension4_test.cpp.o"
  "CMakeFiles/extension4_test.dir/extension4_test.cpp.o.d"
  "extension4_test"
  "extension4_test.pdb"
  "extension4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
