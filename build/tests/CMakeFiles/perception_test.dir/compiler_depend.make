# Empty compiler generated dependencies file for perception_test.
# This may be replaced when dependencies are built.
