file(REMOVE_RECURSE
  "CMakeFiles/perception_test.dir/perception_test.cpp.o"
  "CMakeFiles/perception_test.dir/perception_test.cpp.o.d"
  "perception_test"
  "perception_test.pdb"
  "perception_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
