# Empty dependencies file for fuzz_test.
# This may be replaced when dependencies are built.
