file(REMOVE_RECURSE
  "CMakeFiles/language_test.dir/language_test.cpp.o"
  "CMakeFiles/language_test.dir/language_test.cpp.o.d"
  "language_test"
  "language_test.pdb"
  "language_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
