# Empty compiler generated dependencies file for language_test.
# This may be replaced when dependencies are built.
