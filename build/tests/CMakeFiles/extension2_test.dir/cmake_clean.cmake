file(REMOVE_RECURSE
  "CMakeFiles/extension2_test.dir/extension2_test.cpp.o"
  "CMakeFiles/extension2_test.dir/extension2_test.cpp.o.d"
  "extension2_test"
  "extension2_test.pdb"
  "extension2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
