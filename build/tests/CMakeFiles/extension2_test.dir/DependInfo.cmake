
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extension2_test.cpp" "tests/CMakeFiles/extension2_test.dir/extension2_test.cpp.o" "gcc" "tests/CMakeFiles/extension2_test.dir/extension2_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nvp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perception/CMakeFiles/nvp_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/nvp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/nvp_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nvp_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nvp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nvp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
