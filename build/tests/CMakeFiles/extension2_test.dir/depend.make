# Empty dependencies file for extension2_test.
# This may be replaced when dependencies are built.
