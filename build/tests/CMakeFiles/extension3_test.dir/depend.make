# Empty dependencies file for extension3_test.
# This may be replaced when dependencies are built.
