file(REMOVE_RECURSE
  "CMakeFiles/extension3_test.dir/extension3_test.cpp.o"
  "CMakeFiles/extension3_test.dir/extension3_test.cpp.o.d"
  "extension3_test"
  "extension3_test.pdb"
  "extension3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
