# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/petri_test[1]_include.cmake")
include("/root/repo/build/tests/markov_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_reliability_test[1]_include.cmake")
include("/root/repo/build/tests/core_model_test[1]_include.cmake")
include("/root/repo/build/tests/perception_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/extension2_test[1]_include.cmake")
include("/root/repo/build/tests/language_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/ensemble_test[1]_include.cmake")
include("/root/repo/build/tests/extension3_test[1]_include.cmake")
include("/root/repo/build/tests/extension4_test[1]_include.cmake")
