# Empty dependencies file for bench_adaptive_rejuvenation.
# This may be replaced when dependencies are built.
