file(REMOVE_RECURSE
  "../bench/bench_adaptive_rejuvenation"
  "../bench/bench_adaptive_rejuvenation.pdb"
  "CMakeFiles/bench_adaptive_rejuvenation.dir/bench_adaptive_rejuvenation.cpp.o"
  "CMakeFiles/bench_adaptive_rejuvenation.dir/bench_adaptive_rejuvenation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
