file(REMOVE_RECURSE
  "../bench/bench_fig4a_mttc"
  "../bench/bench_fig4a_mttc.pdb"
  "CMakeFiles/bench_fig4a_mttc.dir/bench_fig4a_mttc.cpp.o"
  "CMakeFiles/bench_fig4a_mttc.dir/bench_fig4a_mttc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_mttc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
