# Empty dependencies file for bench_fig3_rejuv_interval.
# This may be replaced when dependencies are built.
