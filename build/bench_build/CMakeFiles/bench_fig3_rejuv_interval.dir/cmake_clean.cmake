file(REMOVE_RECURSE
  "../bench/bench_fig3_rejuv_interval"
  "../bench/bench_fig3_rejuv_interval.pdb"
  "CMakeFiles/bench_fig3_rejuv_interval.dir/bench_fig3_rejuv_interval.cpp.o"
  "CMakeFiles/bench_fig3_rejuv_interval.dir/bench_fig3_rejuv_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rejuv_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
