# Empty dependencies file for bench_perf_solvers.
# This may be replaced when dependencies are built.
