file(REMOVE_RECURSE
  "../bench/bench_perf_solvers"
  "../bench/bench_perf_solvers.pdb"
  "CMakeFiles/bench_perf_solvers.dir/bench_perf_solvers.cpp.o"
  "CMakeFiles/bench_perf_solvers.dir/bench_perf_solvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
