file(REMOVE_RECURSE
  "../bench/bench_erlangization"
  "../bench/bench_erlangization.pdb"
  "CMakeFiles/bench_erlangization.dir/bench_erlangization.cpp.o"
  "CMakeFiles/bench_erlangization.dir/bench_erlangization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erlangization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
