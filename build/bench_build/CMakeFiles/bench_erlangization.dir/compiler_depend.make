# Empty compiler generated dependencies file for bench_erlangization.
# This may be replaced when dependencies are built.
