# Empty dependencies file for bench_fig4b_alpha.
# This may be replaced when dependencies are built.
