file(REMOVE_RECURSE
  "../bench/bench_fig4b_alpha"
  "../bench/bench_fig4b_alpha.pdb"
  "CMakeFiles/bench_fig4b_alpha.dir/bench_fig4b_alpha.cpp.o"
  "CMakeFiles/bench_fig4b_alpha.dir/bench_fig4b_alpha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
