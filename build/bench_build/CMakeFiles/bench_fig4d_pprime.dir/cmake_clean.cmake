file(REMOVE_RECURSE
  "../bench/bench_fig4d_pprime"
  "../bench/bench_fig4d_pprime.pdb"
  "CMakeFiles/bench_fig4d_pprime.dir/bench_fig4d_pprime.cpp.o"
  "CMakeFiles/bench_fig4d_pprime.dir/bench_fig4d_pprime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_pprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
