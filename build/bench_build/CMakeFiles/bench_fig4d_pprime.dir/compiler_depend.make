# Empty compiler generated dependencies file for bench_fig4d_pprime.
# This may be replaced when dependencies are built.
