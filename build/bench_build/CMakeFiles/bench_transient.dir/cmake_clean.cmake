file(REMOVE_RECURSE
  "../bench/bench_transient"
  "../bench/bench_transient.pdb"
  "CMakeFiles/bench_transient.dir/bench_transient.cpp.o"
  "CMakeFiles/bench_transient.dir/bench_transient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
