# Empty compiler generated dependencies file for bench_transient.
# This may be replaced when dependencies are built.
