file(REMOVE_RECURSE
  "../bench/bench_dataset_accuracy"
  "../bench/bench_dataset_accuracy.pdb"
  "CMakeFiles/bench_dataset_accuracy.dir/bench_dataset_accuracy.cpp.o"
  "CMakeFiles/bench_dataset_accuracy.dir/bench_dataset_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dataset_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
