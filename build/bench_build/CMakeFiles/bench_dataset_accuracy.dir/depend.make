# Empty dependencies file for bench_dataset_accuracy.
# This may be replaced when dependencies are built.
