# Empty dependencies file for bench_table2_params.
# This may be replaced when dependencies are built.
