file(REMOVE_RECURSE
  "../bench/bench_table2_params"
  "../bench/bench_table2_params.pdb"
  "CMakeFiles/bench_table2_params.dir/bench_table2_params.cpp.o"
  "CMakeFiles/bench_table2_params.dir/bench_table2_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
