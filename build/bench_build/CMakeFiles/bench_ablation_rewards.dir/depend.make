# Empty dependencies file for bench_ablation_rewards.
# This may be replaced when dependencies are built.
