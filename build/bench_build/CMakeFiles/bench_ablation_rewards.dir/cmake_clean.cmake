file(REMOVE_RECURSE
  "../bench/bench_ablation_rewards"
  "../bench/bench_ablation_rewards.pdb"
  "CMakeFiles/bench_ablation_rewards.dir/bench_ablation_rewards.cpp.o"
  "CMakeFiles/bench_ablation_rewards.dir/bench_ablation_rewards.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
