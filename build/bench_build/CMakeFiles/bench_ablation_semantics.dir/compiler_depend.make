# Empty compiler generated dependencies file for bench_ablation_semantics.
# This may be replaced when dependencies are built.
