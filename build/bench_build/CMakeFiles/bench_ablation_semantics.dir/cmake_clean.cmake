file(REMOVE_RECURSE
  "../bench/bench_ablation_semantics"
  "../bench/bench_ablation_semantics.pdb"
  "CMakeFiles/bench_ablation_semantics.dir/bench_ablation_semantics.cpp.o"
  "CMakeFiles/bench_ablation_semantics.dir/bench_ablation_semantics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
