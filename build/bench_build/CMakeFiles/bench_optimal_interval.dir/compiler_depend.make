# Empty compiler generated dependencies file for bench_optimal_interval.
# This may be replaced when dependencies are built.
