file(REMOVE_RECURSE
  "../bench/bench_optimal_interval"
  "../bench/bench_optimal_interval.pdb"
  "CMakeFiles/bench_optimal_interval.dir/bench_optimal_interval.cpp.o"
  "CMakeFiles/bench_optimal_interval.dir/bench_optimal_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
