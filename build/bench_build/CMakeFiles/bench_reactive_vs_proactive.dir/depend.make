# Empty dependencies file for bench_reactive_vs_proactive.
# This may be replaced when dependencies are built.
