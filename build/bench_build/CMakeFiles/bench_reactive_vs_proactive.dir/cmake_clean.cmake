file(REMOVE_RECURSE
  "../bench/bench_reactive_vs_proactive"
  "../bench/bench_reactive_vs_proactive.pdb"
  "CMakeFiles/bench_reactive_vs_proactive.dir/bench_reactive_vs_proactive.cpp.o"
  "CMakeFiles/bench_reactive_vs_proactive.dir/bench_reactive_vs_proactive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reactive_vs_proactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
