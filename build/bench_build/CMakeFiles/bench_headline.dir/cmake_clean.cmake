file(REMOVE_RECURSE
  "../bench/bench_headline"
  "../bench/bench_headline.pdb"
  "CMakeFiles/bench_headline.dir/bench_headline.cpp.o"
  "CMakeFiles/bench_headline.dir/bench_headline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
