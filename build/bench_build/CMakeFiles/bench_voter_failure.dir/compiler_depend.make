# Empty compiler generated dependencies file for bench_voter_failure.
# This may be replaced when dependencies are built.
