file(REMOVE_RECURSE
  "../bench/bench_voter_failure"
  "../bench/bench_voter_failure.pdb"
  "CMakeFiles/bench_voter_failure.dir/bench_voter_failure.cpp.o"
  "CMakeFiles/bench_voter_failure.dir/bench_voter_failure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voter_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
