# Empty compiler generated dependencies file for bench_architecture_space.
# This may be replaced when dependencies are built.
