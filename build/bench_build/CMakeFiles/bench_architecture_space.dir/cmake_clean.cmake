file(REMOVE_RECURSE
  "../bench/bench_architecture_space"
  "../bench/bench_architecture_space.pdb"
  "CMakeFiles/bench_architecture_space.dir/bench_architecture_space.cpp.o"
  "CMakeFiles/bench_architecture_space.dir/bench_architecture_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architecture_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
