file(REMOVE_RECURSE
  "../bench/bench_fig4c_p"
  "../bench/bench_fig4c_p.pdb"
  "CMakeFiles/bench_fig4c_p.dir/bench_fig4c_p.cpp.o"
  "CMakeFiles/bench_fig4c_p.dir/bench_fig4c_p.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
