# Empty compiler generated dependencies file for bench_sim_crosscheck.
# This may be replaced when dependencies are built.
