file(REMOVE_RECURSE
  "../bench/bench_sim_crosscheck"
  "../bench/bench_sim_crosscheck.pdb"
  "CMakeFiles/bench_sim_crosscheck.dir/bench_sim_crosscheck.cpp.o"
  "CMakeFiles/bench_sim_crosscheck.dir/bench_sim_crosscheck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
