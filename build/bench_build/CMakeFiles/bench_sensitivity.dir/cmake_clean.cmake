file(REMOVE_RECURSE
  "../bench/bench_sensitivity"
  "../bench/bench_sensitivity.pdb"
  "CMakeFiles/bench_sensitivity.dir/bench_sensitivity.cpp.o"
  "CMakeFiles/bench_sensitivity.dir/bench_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
