# Empty dependencies file for bench_model_structure.
# This may be replaced when dependencies are built.
