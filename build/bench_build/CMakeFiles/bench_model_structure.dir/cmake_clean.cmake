file(REMOVE_RECURSE
  "../bench/bench_model_structure"
  "../bench/bench_model_structure.pdb"
  "CMakeFiles/bench_model_structure.dir/bench_model_structure.cpp.o"
  "CMakeFiles/bench_model_structure.dir/bench_model_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
