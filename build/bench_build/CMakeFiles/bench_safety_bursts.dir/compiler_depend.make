# Empty compiler generated dependencies file for bench_safety_bursts.
# This may be replaced when dependencies are built.
