file(REMOVE_RECURSE
  "../bench/bench_safety_bursts"
  "../bench/bench_safety_bursts.pdb"
  "CMakeFiles/bench_safety_bursts.dir/bench_safety_bursts.cpp.o"
  "CMakeFiles/bench_safety_bursts.dir/bench_safety_bursts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safety_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
